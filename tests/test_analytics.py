"""Job-level analytics: summarization, anomaly detection, efficiency views.

Covers the PR-9 analytics loop end to end:

- :func:`repro.analytics.summarize_series` — the pure fold from one
  job's node timeseries to statistics, tags and a 0–1 efficiency score;
- :func:`repro.analytics.summarize_schema` — the satellite-side stage
  (idempotent upserts, ``data_version`` bumps, telemetry feeds) and the
  replication of ``fact_job_analytics`` through the SUPReMM summary
  filter while the raw series stay home;
- :meth:`repro.realms.supremm.SupremmRealm.job_scores` — the
  federation-wide worst-first ranking with member/application filters;
- ``GET /jobs/efficiency`` — cache/ETag/pagination contract;
- :class:`repro.obs.anomaly.AnomalyDetector` — robust per-application
  baselines, the ``min_samples``/``min_baseline`` guards, exactly-once
  counting;
- the acceptance scenario: a two-member federation with injected
  pathological jobs, summarize -> federate -> query, the injected jobs
  rank worst, the detector flags exactly them, the
  ``analytics_anomaly_rate_high`` SLO rule fires, and the monitor's
  render is byte-identical across runs under a FakeClock.
"""

from __future__ import annotations

import pytest

from repro.analytics import (
    ANALYTICS_TABLE,
    AnalyticsPlane,
    summarize_schema,
    summarize_series,
)
from repro.cli import _demo_analytics_federation, main
from repro.core import FederationHub, XdmodInstance, supremm_summary_filter
from repro.etl import ingest_performance
from repro.obs import FakeClock, Observability, parse_prometheus_text
from repro.obs.anomaly import (
    SCORE_SERIES,
    AnomalyDetector,
    JobScore,
    classify_kind,
)
from repro.realms import supremm_realm
from repro.simulators import (
    WorkloadConfig,
    WorkloadGenerator,
    generate_performance_batch,
    simulate_resource,
    to_sacct_log,
)
from repro.ui import XdmodApi
from tests.conftest import T0, T_MAR


def fake_obs(name: str) -> Observability:
    return Observability(clock=FakeClock(auto_advance=0.001), name=name)


def build_perf_instance(name, small_resource, *, seed, obs=None, member=""):
    """A satellite with accounting, perf series, and analytics summaries."""
    config = WorkloadConfig(
        seed=seed, jobs_per_day=8, max_cores=small_resource.total_cores
    )
    records = simulate_resource(
        small_resource, WorkloadGenerator(config).generate(T0, T0 + 7 * 86400)
    )
    instance = XdmodInstance(name, obs=obs)
    instance.pipeline.ingest_sacct(
        to_sacct_log(records), default_resource=small_resource.name
    )
    batch = generate_performance_batch(records, small_resource, max_jobs=12)
    ingest_performance(instance.schema, batch)
    summarize_schema(instance.schema, obs=obs, member=member or name)
    return instance, len(batch)


# -- summarize_series (pure) --------------------------------------------------

# the "uncategorized" profile: cpu_fraction 0.70, mem_fraction 0.35,
# flops_per_core 3.0 -> expected intensity 3.0 / (0.35 * 40) ~= 0.214,
# saturating (with 4x headroom) at measured intensity ~= 0.857
APP = "uncategorized"


def nominal_series(n=10):
    return {
        "cpu_user": [0.7] * n,
        "mem_bw_gbs": [1.0] * n,
        "flops_gf": [10.0] * n,
    }


class TestSummarizeSeries:
    def test_nominal_job_scores_one_untagged(self):
        summary = summarize_series(1, "r", APP, nominal_series())
        assert summary.efficiency_score == pytest.approx(1.0)
        assert summary.tags == ()
        assert summary.n_samples == 10
        assert summary.idle_tail_frac == 0.0
        assert summary.intensity_ratio == pytest.approx(1.0)

    def test_deterministic(self):
        series = nominal_series()
        assert summarize_series(1, "r", APP, series) == summarize_series(
            1, "r", APP, series
        )

    def test_idle_tail_tagged_and_penalized(self):
        series = nominal_series()
        series["cpu_user"] = [0.7] * 8 + [0.05] * 2  # trailing 20% idle
        summary = summarize_series(1, "r", APP, series)
        assert "idle-tail" in summary.tags
        assert summary.idle_tail_frac == pytest.approx(0.2)
        # cpu_term (0.57/0.7) * tail factor 0.8 * full intensity factor
        assert summary.efficiency_score == pytest.approx(
            (0.57 / 0.7) * 0.8, rel=1e-6
        )

    def test_memory_bound_tag(self):
        series = nominal_series()
        series["flops_gf"] = [0.5] * 10
        series["mem_bw_gbs"] = [10.0] * 10  # low arithmetic intensity
        summary = summarize_series(1, "r", APP, series)
        assert "memory-bound" in summary.tags
        assert summary.intensity_ratio < 0.5
        assert summary.efficiency_score < 0.5

    def test_io_heavy_tag(self):
        series = nominal_series()
        series["io_read_mbs"] = [150.0] * 10
        series["io_write_mbs"] = [60.0] * 10
        summary = summarize_series(1, "r", APP, series)
        assert "io-heavy" in summary.tags
        assert summary.io_avg_mbs == pytest.approx(210.0)

    def test_low_cpu_tag(self):
        series = nominal_series()
        series["cpu_user"] = [0.3] * 10  # cpu_term 0.43 < 0.5
        summary = summarize_series(1, "r", APP, series)
        assert "low-cpu" in summary.tags

    def test_empty_series_scores_zero(self):
        summary = summarize_series(1, "r", APP, {})
        assert summary.n_samples == 0
        assert summary.efficiency_score == 0.0
        assert summary.tags == ("memory-bound", "low-cpu")

    def test_statistics(self):
        series = {"cpu_user": [0.0, 0.25, 0.5, 0.75, 1.0]}
        summary = summarize_series(1, "r", APP, series)
        assert summary.cpu_user_avg == pytest.approx(0.5)
        assert summary.cpu_user_p05 == pytest.approx(0.05)
        assert summary.cpu_user_p95 == pytest.approx(0.95)
        assert summary.cpu_imbalance == pytest.approx(0.70710678)
        assert summary.idle_tail_frac == 0.0  # job ends busy

    def test_unknown_application_uses_fallback_profile(self):
        series = nominal_series()
        fallback = summarize_series(1, "r", APP, series)
        unknown = summarize_series(1, "r", "no_such_app", series)
        assert unknown.efficiency_score == fallback.efficiency_score
        assert unknown.tags == fallback.tags
        assert unknown.application == "no_such_app"


# -- satellite stage + replication -------------------------------------------


class TestSummarizeSchema:
    def test_upserts_are_idempotent_and_bump_data_version(
        self, small_resource
    ):
        instance, n_jobs = build_perf_instance("sat", small_resource, seed=50)
        schema = instance.schema
        fact = schema.table(ANALYTICS_TABLE)
        assert len(fact) == n_jobs
        first = sorted(
            fact.rows(), key=lambda r: (r["resource_id"], r["job_id"])
        )
        version = schema.data_version
        # re-summarizing rewrites the same rows, and still stamps the
        # serving cache's invalidation counter
        assert summarize_schema(schema) == n_jobs
        assert len(fact) == n_jobs
        again = sorted(
            fact.rows(), key=lambda r: (r["resource_id"], r["job_id"])
        )
        assert again == first
        assert schema.data_version > version

    def test_schema_without_series_summarizes_nothing(self):
        assert summarize_schema(XdmodInstance("bare").schema) == 0

    def test_obs_feeds_counter_and_score_series(self, small_resource):
        obs = fake_obs("sat")
        _, n_jobs = build_perf_instance(
            "sat", small_resource, seed=50, obs=obs, member="siteX"
        )
        parsed = parse_prometheus_text(obs.registry.render_prometheus())
        assert parsed.value(
            "analytics_jobs_summarized_total", member="siteX"
        ) == n_jobs
        samples = obs.history.samples(SCORE_SERIES, member="siteX")
        assert len(samples) == n_jobs
        assert all(0.0 <= v <= 1.0 for _, v in samples)

    def test_analytics_facts_replicate_series_stay_home(self, small_resource):
        instance, n_jobs = build_perf_instance("sat", small_resource, seed=50)
        hub = FederationHub("hub")
        hub.join(instance, filter=supremm_summary_filter())
        fed = hub.federated_schemas()["sat"]
        assert fed.has_table(ANALYTICS_TABLE)
        assert len(fed.table(ANALYTICS_TABLE)) == n_jobs
        assert not fed.has_table("job_timeseries")


# -- realm ranking ------------------------------------------------------------


@pytest.fixture()
def two_member_sources(small_resource):
    a, _ = build_perf_instance("a", small_resource, seed=50)
    b, _ = build_perf_instance("b", small_resource, seed=51)
    return {"a": a.schema, "b": b.schema}


class TestJobScores:
    def test_ranked_worst_first_with_deterministic_ties(
        self, two_member_sources
    ):
        rows = supremm_realm().job_scores(two_member_sources)
        assert len(rows) == 24
        keys = [
            (r["score"], r["member"], r["resource"], r["job_id"])
            for r in rows
        ]
        assert keys == sorted(keys)
        assert {r["member"] for r in rows} == {"a", "b"}

    def test_member_and_application_filters(self, two_member_sources):
        realm = supremm_realm()
        only_a = realm.job_scores(two_member_sources, member="a")
        assert only_a and all(r["member"] == "a" for r in only_a)
        app = only_a[0]["application"]
        filtered = realm.job_scores(two_member_sources, application=app)
        assert filtered and all(r["application"] == app for r in filtered)

    def test_time_window_filters_on_job_end(self, two_member_sources):
        realm = supremm_realm()
        everything = realm.job_scores(two_member_sources, start=T0, end=T_MAR)
        assert everything == realm.job_scores(two_member_sources)
        assert realm.job_scores(
            two_member_sources, start=T_MAR, end=T_MAR + 86400
        ) == []

    def test_members_without_analytics_are_skipped(self, two_member_sources):
        realm = supremm_realm()
        baseline = realm.job_scores(two_member_sources)
        with_idle = dict(two_member_sources)
        with_idle["idle"] = XdmodInstance("idle").schema
        assert realm.job_scores(with_idle) == baseline

    def test_bare_schema_source_is_member_local(self, two_member_sources):
        rows = supremm_realm().job_scores(two_member_sources["a"])
        assert rows and all(r["member"] == "local" for r in rows)

    def test_query_efficiency_truncates(self, two_member_sources):
        realm = supremm_realm()
        full = realm.job_scores(two_member_sources)
        assert realm.query_efficiency(two_member_sources, limit=3) == full[:3]


# -- REST: /jobs/efficiency ---------------------------------------------------


class TestEfficiencyEndpoint:
    @pytest.fixture()
    def api(self, two_member_sources):
        return XdmodApi(
            {"supremm": supremm_realm()}, two_member_sources,
            obs=fake_obs("api"),
        )

    def test_ranking_cache_and_etag(self, api):
        status, payload, headers = api.handle_full("/jobs/efficiency", {})
        assert status == 200
        assert headers["X-Cache"] == "miss"
        jobs = payload["jobs"]
        assert payload["total_jobs"] == len(jobs) == 24
        scores = [j["score"] for j in jobs]
        assert scores == sorted(scores)
        # warm path: cache hit, and If-None-Match collapses to a 304
        status, _, again = api.handle_full("/jobs/efficiency", {})
        assert again["X-Cache"] == "hit" and again["ETag"] == headers["ETag"]
        status, body, _ = api.handle_full(
            "/jobs/efficiency", {"If-None-Match": headers["ETag"]}
        )
        assert status == 304 and body == {}

    def test_pagination(self, api):
        _, full, _ = api.handle_full("/jobs/efficiency", {})
        status, page, _ = api.handle_full(
            "/jobs/efficiency?offset=1&limit=2", {}
        )
        assert status == 200
        assert page["jobs"] == full["jobs"][1:3]
        assert page["total_jobs"] == full["total_jobs"]
        assert page["offset"] == 1 and page["limit"] == 2

    def test_member_filter_param(self, api):
        status, payload, _ = api.handle_full("/jobs/efficiency?member=b", {})
        assert status == 200
        assert payload["jobs"] and all(
            j["member"] == "b" for j in payload["jobs"]
        )

    def test_bad_params_are_400(self, api):
        assert api.handle_full("/jobs/efficiency?limit=abc", {})[0] == 400
        assert api.handle_full("/jobs/efficiency?offset=-1", {})[0] == 400
        assert api.handle_full("/jobs/efficiency?start=soon", {})[0] == 400

    def test_404_without_supremm_realm(self):
        api = XdmodApi({}, {}, obs=fake_obs("api"))
        status, payload, _ = api.handle_full("/jobs/efficiency", {})
        assert status == 404
        assert "supremm" in payload["error"]

    def test_data_version_bump_invalidates_cache(
        self, api, two_member_sources
    ):
        api.handle_full("/jobs/efficiency", {})
        _, _, headers = api.handle_full("/jobs/efficiency", {})
        assert headers["X-Cache"] == "hit"
        # a replication sync landing new analytics rows bumps the source
        # data_version; the next read must recompute, not serve stale
        fact = two_member_sources["a"].table(ANALYTICS_TABLE)
        row = dict(next(iter(fact.rows())))
        row["efficiency_score"] = 0.0
        fact.upsert(row)
        _, payload, headers = api.handle_full("/jobs/efficiency", {})
        assert headers["X-Cache"] == "stale"
        assert payload["jobs"][0]["score"] == 0.0


# -- detector (synthetic scores) ----------------------------------------------


def nominal_scores(n=30, app="namd", member="m0"):
    return [
        JobScore(
            member=member, resource="r", job_id=i, application=app, score=0.9
        )
        for i in range(n)
    ]


class TestAnomalyDetector:
    def test_flags_outlier_against_pooled_baseline(self):
        obs = fake_obs("hub")
        detector = AnomalyDetector(obs)
        bad = JobScore(
            member="m1", resource="r", job_id=99, application="namd",
            score=0.2, tags=("idle-tail",),
        )
        anomalies = detector.detect(nominal_scores() + [bad])
        assert [a.job for a in anomalies] == [bad]
        anomaly = anomalies[0]
        assert anomaly.kind == "idle-tail"
        assert anomaly.baseline == pytest.approx(0.9)
        assert anomaly.sigma == pytest.approx(0.05)  # floored
        assert anomaly.zscore == pytest.approx(14.0)

    def test_flag_counted_once_gauge_tracks_open(self):
        obs = fake_obs("hub")
        detector = AnomalyDetector(obs)
        bad = JobScore(
            member="m1", resource="r", job_id=99, application="namd",
            score=0.2, tags=("idle-tail",),
        )
        scores = nominal_scores() + [bad]
        assert len(detector.detect(scores)) == 1
        assert len(detector.detect(scores)) == 1  # still open on re-run
        parsed = parse_prometheus_text(obs.registry.render_prometheus())
        assert parsed.value(
            "analytics_anomalies_total", member="m1", kind="idle-tail"
        ) == 1
        assert parsed.value("analytics_anomalies_open_rows") == 1
        # recovery: the job gone, the gauge returns to zero
        assert detector.detect(nominal_scores()) == []
        parsed = parse_prometheus_text(obs.registry.render_prometheus())
        assert parsed.value("analytics_anomalies_open_rows") == 0

    def test_min_samples_guard_skips_short_jobs(self):
        obs = fake_obs("hub")
        detector = AnomalyDetector(obs)
        short = JobScore(
            member="m0", resource="r", job_id=99, application="namd",
            score=0.2, n_samples=3,
        )
        # a 3-sample job's mean is a warm-up artifact, not evidence
        assert detector.detect(nominal_scores() + [short]) == []
        long = JobScore(
            member="m0", resource="r", job_id=98, application="namd",
            score=0.2, n_samples=30,
        )
        flagged = detector.detect([long])
        assert [a.job for a in flagged] == [long]

    def test_min_baseline_guard(self):
        obs = fake_obs("hub")
        detector = AnomalyDetector(obs)
        # only 3 samples for this application: no baseline, no verdict
        thin = nominal_scores(n=2, app="rare") + [
            JobScore(
                member="m0", resource="r", job_id=99, application="rare",
                score=0.1,
            )
        ]
        assert detector.detect(thin) == []

    def test_kind_classification_fallback(self):
        assert classify_kind(("memory-bound", "low-cpu")) == "memory-bound"
        assert classify_kind(("weird",)) == "low-efficiency"
        assert classify_kind(()) == "low-efficiency"


# -- acceptance: the federated analytics loop ---------------------------------


@pytest.fixture(scope="module")
def injected_demo():
    return _demo_analytics_federation(inject_pathological=True)


class TestFederationAcceptance:
    def test_injected_jobs_rank_worst_and_are_exactly_flagged(
        self, injected_demo
    ):
        hub, satellites, plane, monitor, pathological = injected_demo
        assert len(satellites) == 2 and len(pathological) == 2
        assert plane.refreshes >= 1
        # the two injected pathologies are the federation's two worst jobs
        worst = {(j.member, j.job_id) for j in plane.worst_jobs(2)}
        assert worst == set(pathological)
        # and exactly those are flagged -- no false positives across the
        # ~90 nominal federated jobs
        flagged = {(a.job.member, a.job.job_id) for a in plane.anomalies}
        assert flagged == set(pathological)
        kinds = {a.kind for a in plane.anomalies}
        assert kinds == {"idle-tail", "memory-bound"}

    def test_efficiency_endpoint_over_the_hub(self, injected_demo):
        hub, _, plane, monitor, pathological = injected_demo
        api = XdmodApi(
            {"supremm": supremm_realm()}, hub.federated_schemas(),
            obs=hub.obs, monitor=monitor,
        )
        status, payload, _ = api.handle_full("/jobs/efficiency?limit=2", {})
        assert status == 200
        assert {
            (j["member"], j["job_id"]) for j in payload["jobs"]
        } == set(pathological)
        assert payload["total_jobs"] == len(plane.last_scores)

    def test_anomaly_slo_rule_fires_through_engine(self, injected_demo):
        _, _, _, monitor, pathological = injected_demo
        monitor.evaluate_alerts()
        firing = {
            (s.rule.id, s.member) for s in monitor.alerts.firing()
        }
        assert ("analytics_anomaly_rate_high", "site0") in firing

    def test_health_reports_open_anomalies(self, injected_demo):
        hub, _, plane, monitor, _ = injected_demo
        api = XdmodApi(
            {"supremm": supremm_realm()}, hub.federated_schemas(),
            obs=hub.obs, monitor=monitor,
        )
        status, payload = api.handle("/health", {})
        assert status == 200
        assert payload["anomalies_open"] == plane.anomalies_open == 2

    def test_monitor_render_shows_analytics(self, injected_demo):
        _, _, _, monitor, _ = injected_demo
        panel = monitor.render()
        assert "efficiency scores (n=" in panel
        assert "least efficient jobs:" in panel
        assert "anomalies open: 2" in panel

    def test_clean_federation_flags_nothing(self):
        _, _, plane, monitor, pathological = _demo_analytics_federation()
        assert pathological == []
        assert plane.anomalies == ()
        assert plane.last_scores  # scored plenty, flagged none
        assert not any(
            s.rule.id == "analytics_anomaly_rate_high"
            for s in monitor.alerts.firing()
        )

    def test_render_is_deterministic_under_fake_clock(self):
        first = _demo_analytics_federation(inject_pathological=True)
        second = _demo_analytics_federation(inject_pathological=True)
        assert first[3].render() == second[3].render()
        assert [a.to_dict() for a in first[2].anomalies] == [
            a.to_dict() for a in second[2].anomalies
        ]


# -- CLI ----------------------------------------------------------------------


class TestAnalyticsCli:
    def test_summarize_exits_zero_and_ranks(self, capsys):
        assert main(["analytics", "summarize", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "jobs summarized" in out

    def test_anomalies_exit_one_when_flagged(self, capsys):
        assert main(["analytics", "anomalies", "--inject-pathological"]) == 1
        captured = capsys.readouterr()
        assert "anomalous job(s):" in captured.err
        assert "efficiency scores" in captured.out

    def test_bad_top_is_operator_error(self, capsys):
        assert main(["analytics", "summarize", "--top", "0"]) == 2
        assert "--top" in capsys.readouterr().err
