"""Resilience primitives: retry policy, circuit breaker, dead letters."""

from __future__ import annotations

import pytest

from repro.core import (
    CircuitBreaker,
    CircuitState,
    DeadLetterQueue,
    MemberSyncOutcome,
    RetryPolicy,
)
from repro.warehouse import BinlogEvent, EventType


class TestRetryPolicy:
    def test_schedule_is_exponential_and_bounded(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=1.0, multiplier=2.0, max_delay=10.0,
            jitter=0.0,
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(max_retries=5, seed=42)
        b = RetryPolicy(max_retries=5, seed=42)
        c = RetryPolicy(max_retries=5, seed=43)
        assert a.schedule() == b.schedule()
        assert a.schedule() != c.schedule()

    def test_jitter_only_shrinks_delay(self):
        policy = RetryPolicy(max_retries=8, jitter=0.5, seed=1)
        plain = RetryPolicy(max_retries=8, jitter=0.0)
        for jittered, raw in zip(policy.schedule(), plain.schedule()):
            assert 0 < jittered <= raw

    def test_attempts_invokes_sleep_between_tries(self):
        slept: list[float] = []
        policy = RetryPolicy(max_retries=3, jitter=0.0, sleep=slept.append)
        assert list(policy.attempts()) == [0, 1, 2, 3]
        assert slept == policy.schedule()

    def test_attempts_without_sleep_just_counts(self):
        assert list(RetryPolicy(max_retries=2).attempts()) == [0, 1, 2]


class TestCircuitBreaker:
    def test_initially_closed_and_allowing(self):
        breaker = CircuitBreaker()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=2)
        breaker.record_failure("boom")
        breaker.record_failure("boom")
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure("boom")
        assert breaker.state is CircuitState.OPEN
        assert breaker.times_opened == 1
        assert breaker.last_error == "boom"

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure("down")
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()  # cooling down
        assert not breaker.allow()
        assert breaker.allow()  # probe
        assert breaker.state is CircuitState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        breaker.record_failure("still down")
        assert breaker.state is CircuitState.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


def _event(lsn: int) -> BinlogEvent:
    return BinlogEvent(lsn, EventType.INSERT, "fact_job", {"row": {"x": lsn}})


class TestDeadLetterQueue:
    def test_add_get_remove_in_lsn_order(self):
        dlq = DeadLetterQueue()
        dlq.add(_event(7), "seven", 3)
        dlq.add(_event(3), "three", 3)
        assert len(dlq) == 2
        assert dlq.lsns() == [3, 7]
        assert 3 in dlq and 5 not in dlq
        assert dlq.get(7).error == "seven"
        assert [letter.lsn for letter in dlq] == [3, 7]
        removed = dlq.remove(3)
        assert removed.attempts == 3
        assert dlq.lsns() == [7]
        dlq.clear()
        assert len(dlq) == 0


class TestMemberSyncOutcome:
    def test_compares_as_events_applied(self):
        outcome = MemberSyncOutcome("site0", "applied", 5)
        assert outcome > 0
        assert outcome >= 5
        assert outcome < 6
        assert outcome == 5
        assert int(outcome) == 5

    def test_sums_like_int(self):
        outcomes = [
            MemberSyncOutcome("a", "applied", 2),
            MemberSyncOutcome("b", "circuit_open", 0),
        ]
        assert sum(outcomes) == 2

    def test_carries_failure_detail(self):
        outcome = MemberSyncOutcome(
            "a", "failed", 0, retried=3, error="apply blew up"
        )
        assert outcome.status == "failed"
        assert outcome.retried == 3
        assert "apply blew up" in repr(outcome)
