"""Allocations realm: grants, charge reconciliation, burn metrics."""

from __future__ import annotations

import pytest

from repro.etl import ParsedJob, ingest_jobs
from repro.realms import (
    Allocation,
    aggregate_allocations,
    allocation_balances,
    allocations_realm,
    reconcile_charges,
    register_allocations,
)
from repro.simulators import ConversionTable
from repro.timeutil import ts
from repro.warehouse import Database

Q1_START, Q1_END = ts(2017, 1, 1), ts(2017, 4, 1)
YEAR_END = ts(2018, 1, 1)


def job(job_id, *, pi="pi_alpha", resource="r1", end=ts(2017, 2, 1), cores=10,
        hours=10):
    return ParsedJob(
        job_id=job_id, user="u1", pi=pi, queue="q", application="a",
        submit_ts=end - hours * 3600 - 60, start_ts=end - hours * 3600,
        end_ts=end, nodes=1, cores=cores, req_walltime_s=hours * 3600,
        state="COMPLETED", exit_code=0, resource=resource,
    )


@pytest.fixture()
def schema():
    s = Database().create_schema("modw")
    conv = ConversionTable({"r1": 2.0})
    ingest_jobs(s, [job(1), job(2, end=ts(2017, 3, 1)),
                    job(3, pi="pi_beta"),
                    job(4, end=ts(2017, 6, 1))], conversion=conv)
    register_allocations(s, [
        Allocation(1, "pi_alpha", "r1", 1000.0, Q1_START, Q1_END),
        Allocation(2, "pi_beta", "r1", 500.0, Q1_START, YEAR_END),
    ])
    return s


class TestRegistration:
    def test_upsert_by_id(self, schema):
        register_allocations(schema, [
            Allocation(1, "pi_alpha", "r1", 2000.0, Q1_START, Q1_END),
        ])
        row = schema.table("dim_allocation").get((1,))
        assert row["su_granted"] == 2000.0
        assert len(schema.table("dim_allocation")) == 2

    def test_invalid_allocations_rejected(self, schema):
        with pytest.raises(ValueError):
            register_allocations(schema, [
                Allocation(9, "p", "r1", 10.0, Q1_END, Q1_START),
            ])
        with pytest.raises(ValueError):
            register_allocations(schema, [
                Allocation(9, "p", "r1", -1.0, Q1_START, Q1_END),
            ])


class TestReconciliation:
    def test_jobs_charge_covering_allocation(self, schema):
        charged, uncovered = reconcile_charges(schema)
        # jobs 1,2 (pi_alpha, Q1) -> alloc 1; job 3 (pi_beta) -> alloc 2;
        # job 4 ends in June, outside pi_alpha's Q1 window -> uncovered
        assert charged == 3
        assert uncovered == 1
        by_alloc = {}
        for charge in schema.table("fact_allocation_charge").rows():
            by_alloc.setdefault(charge["allocation_id"], 0)
            by_alloc[charge["allocation_id"]] += 1
        assert by_alloc == {1: 2, 2: 1}

    def test_charges_in_xdsu(self, schema):
        reconcile_charges(schema)
        charge = next(schema.table("fact_allocation_charge").rows())
        # 10 cores x 10 h x factor 2.0 = 200 XD SUs
        assert charge["xdsu_charged"] == pytest.approx(200.0)

    def test_reconcile_is_idempotent(self, schema):
        reconcile_charges(schema)
        charged, _ = reconcile_charges(schema)
        assert charged == 3
        assert len(schema.table("fact_allocation_charge")) == 3


class TestBalances:
    def test_remaining_and_overspend_flag(self, schema):
        reconcile_charges(schema)
        balances = {b["allocation_id"]: b for b in allocation_balances(schema)}
        assert balances[1]["xdsu_charged"] == pytest.approx(400.0)
        assert balances[1]["remaining"] == pytest.approx(600.0)
        assert not balances[1]["overspent"]
        # shrink the grant below usage -> overspent
        register_allocations(schema, [
            Allocation(1, "pi_alpha", "r1", 100.0, Q1_START, Q1_END),
        ])
        balances = {b["allocation_id"]: b for b in allocation_balances(schema)}
        assert balances[1]["overspent"]


class TestRealmQueries:
    def test_aggregate_and_query(self, schema):
        reconcile_charges(schema)
        aggregate_allocations(schema, "month")
        realm = allocations_realm()
        charged = realm.query(
            schema, "xdsu_charged", start=Q1_START, end=YEAR_END,
            group_by="project", view="aggregate",
        ).totals()
        assert charged["pi_alpha"] == pytest.approx(400.0)
        assert charged["pi_beta"] == pytest.approx(200.0)

    def test_grant_prorated_over_window(self, schema):
        reconcile_charges(schema)
        aggregate_allocations(schema, "month")
        realm = allocations_realm()
        granted = realm.query(
            schema, "su_granted", start=Q1_START, end=YEAR_END,
            group_by="allocation", view="aggregate",
        ).totals()
        # full grants recovered when summed over their windows
        assert granted["1"] == pytest.approx(1000.0)
        assert granted["2"] == pytest.approx(500.0)

    def test_utilization_ratio(self, schema):
        reconcile_charges(schema)
        aggregate_allocations(schema, "month")
        realm = allocations_realm()
        utilization = realm.query(
            schema, "grant_utilization", start=Q1_START, end=YEAR_END,
            view="aggregate",
        ).totals()["total"]
        assert utilization == pytest.approx(600.0 / 1500.0)

    def test_empty_schema(self):
        schema = Database().create_schema("modw")
        from repro.realms import create_allocations_realm

        create_allocations_realm(schema)
        assert aggregate_allocations(schema, "month") == 0
