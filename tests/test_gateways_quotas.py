"""Science-gateway attribution and storage quota-threshold metrics."""

from __future__ import annotations

import pytest

from repro.aggregation import Aggregator
from repro.core import XdmodInstance
from repro.etl import ingest_storage_snapshots
from repro.realms import jobs_realm, storage_realm
from repro.simulators import WorkloadConfig, WorkloadGenerator, simulate_resource, to_sacct_log
from repro.timeutil import ts
from repro.warehouse import Database
from tests.conftest import T0, T_MAR


class TestGateways:
    @pytest.fixture()
    def gateway_instance(self, small_resource):
        config = WorkloadConfig(
            seed=55, jobs_per_day=20, gateway_fraction=0.3,
            max_cores=small_resource.total_cores,
        )
        records = simulate_resource(
            small_resource,
            WorkloadGenerator(config).generate(T0, T0 + 10 * 86400),
        )
        instance = XdmodInstance("gw_site")
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=small_resource.name
        )
        instance.aggregate(["month"])
        return instance, records

    def test_gateway_jobs_generated(self, gateway_instance):
        _, records = gateway_instance
        gateway_jobs = [r for r in records if r.user.startswith("gw_")]
        fraction = len(gateway_jobs) / len(records)
        assert 0.15 < fraction < 0.45  # configured at 0.3
        assert {r.user for r in gateway_jobs} <= {"gw_nanohub", "gw_cipres"}

    def test_gateway_dimension_labels(self, gateway_instance):
        instance, _ = gateway_instance
        by_gateway = jobs_realm().query(
            instance.schema, "n_jobs_ended",
            start=T0, end=T_MAR, group_by="gateway", view="aggregate",
        ).totals()
        assert "Not a gateway" in by_gateway
        assert {"nanohub", "cipres"} <= set(by_gateway)
        total = jobs_realm().query(
            instance.schema, "n_jobs_ended",
            start=T0, end=T_MAR, view="aggregate",
        ).totals()["total"]
        assert sum(by_gateway.values()) == total

    def test_gateway_accounts_flagged_in_dim_person(self, gateway_instance):
        instance, _ = gateway_instance
        rows = {
            r["username"]: r["gateway_label"]
            for r in instance.schema.table("dim_person").rows()
        }
        assert rows["gw_nanohub"] == "nanohub"
        non_gateway = [v for k, v in rows.items() if not k.startswith("gw_")]
        assert set(non_gateway) == {"Not a gateway"}

    def test_no_gateways_by_default(self):
        config = WorkloadConfig(seed=1, jobs_per_day=20)
        requests = list(WorkloadGenerator(config).generate(T0, T0 + 86400 * 3))
        assert not any(r.user.startswith("gw_") for r in requests)


class TestQuotaThresholds:
    def _docs(self):
        base = {
            "resource": "store", "filesystem": "fs1", "mountpoint": "/fs1",
            "resource_type": "persistent",
        }
        docs = []
        for t in (ts(2017, 1, 7), ts(2017, 1, 21)):
            for user, soft, hard in (("u1", 50.0, 100.0), ("u2", 30.0, 60.0)):
                docs.append(dict(
                    base, user=user, ts=t, file_count=100,
                    logical_usage_gb=10.0, physical_usage_gb=12.0,
                    soft_quota_gb=soft, hard_quota_gb=hard,
                ))
        return docs

    def test_quota_threshold_gauges(self):
        schema = Database().create_schema("modw")
        ingest_storage_snapshots(schema, self._docs())
        Aggregator(schema).aggregate_storage("month")
        realm = storage_realm()
        soft = realm.query(
            schema, "soft_quota_gb", start=T0, end=T_MAR, view="aggregate",
        ).totals()["total"]
        hard = realm.query(
            schema, "hard_quota_gb", start=T0, end=T_MAR, view="aggregate",
        ).totals()["total"]
        # per-ts totals: soft 80, hard 160; gauge average over 2 snapshots
        assert soft == pytest.approx(80.0)
        assert hard == pytest.approx(160.0)
        assert hard > soft

    def test_quota_gauges_with_simulator(self, storage_docs):
        schema = Database().create_schema("modw")
        ingest_storage_snapshots(schema, storage_docs)
        Aggregator(schema).aggregate_storage("month")
        realm = storage_realm()
        for row in realm.query(
            schema, "soft_quota_gb", start=T0, end=T_MAR,
            group_by="filesystem",
        ).rows:
            assert row.value > 0
