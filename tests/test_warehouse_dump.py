"""Dump/load: the loose-federation and backup transport."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.warehouse import (
    ColumnType,
    Database,
    DumpError,
    TableSchema,
    dump_schema,
    load_schema,
    make_columns,
    read_dump_file,
    write_dump_file,
)

C = ColumnType


def populated_schema(db: Database, name: str = "modw"):
    schema = db.create_schema(name)
    t = schema.create_table(
        TableSchema(
            "jobs",
            make_columns([
                ("job_id", C.INT, False),
                ("user", C.STR, False),
                ("payload", C.JSON),
            ]),
            primary_key=("job_id",),
            indexes=("user",),
        )
    )
    for i in range(20):
        t.insert({"job_id": i, "user": f"u{i % 3}", "payload": {"tags": [i]}})
    return schema


class TestDumpLoad:
    def test_round_trip_preserves_contents(self):
        db = Database()
        schema = populated_schema(db)
        dump = dump_schema(schema)
        db2 = Database()
        loaded = load_schema(db2, dump)
        assert loaded.checksum() == schema.checksum()
        assert loaded.table("jobs").schema == schema.table("jobs").schema

    def test_rename_on_load(self):
        db = Database()
        schema = populated_schema(db)
        db2 = Database()
        loaded = load_schema(db2, dump_schema(schema), rename_to="fed_site")
        assert loaded.name == "fed_site"
        # contents identical even though the name changed
        assert loaded.checksum() == schema.checksum()

    def test_existing_schema_requires_replace(self):
        db = Database()
        schema = populated_schema(db)
        db2 = Database()
        load_schema(db2, dump_schema(schema))
        with pytest.raises(DumpError):
            load_schema(db2, dump_schema(schema))
        load_schema(db2, dump_schema(schema), replace=True)  # ok

    def test_checksum_verification_catches_tampering(self):
        db = Database()
        schema = populated_schema(db)
        dump = dump_schema(schema)
        dump["tables"][0]["rows"][0][1] = "tampered"
        db2 = Database()
        with pytest.raises(DumpError):
            load_schema(db2, dump)

    def test_bad_format_version(self):
        db = Database()
        dump = dump_schema(populated_schema(db))
        dump["format_version"] = 99
        with pytest.raises(DumpError):
            load_schema(Database(), dump)

    def test_dump_records_binlog_head(self):
        db = Database()
        schema = populated_schema(db)
        dump = dump_schema(schema)
        assert dump["binlog_head"] == schema.binlog.head_lsn


class TestDumpFiles:
    def test_file_round_trip_gzip(self, tmp_path):
        db = Database()
        schema = populated_schema(db)
        path = write_dump_file(schema, tmp_path / "dump.json.gz")
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        dump = read_dump_file(path)
        loaded = load_schema(Database(), dump)
        assert loaded.checksum() == schema.checksum()

    def test_file_round_trip_plain(self, tmp_path):
        db = Database()
        schema = populated_schema(db)
        path = write_dump_file(schema, tmp_path / "dump.json", compress=False)
        json.loads(path.read_text())  # plain JSON on disk
        loaded = load_schema(Database(), read_dump_file(path))
        assert loaded.checksum() == schema.checksum()

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b"not json at all{{{")
        with pytest.raises(DumpError):
            read_dump_file(path)

    def test_corrupt_gzip_payload(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        path.write_bytes(gzip.compress(b"nope["))
        with pytest.raises(DumpError):
            read_dump_file(path)
