"""Telemetry: metrics registry, tracer, clocks, and instrumented hot paths."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.core import FederationHub, FederationMonitor, XdmodInstance
from repro.core.live import LiveReplicator
from repro.core.resilience import CircuitBreaker
from repro.etl import ParsedJob, ingest_jobs
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    FakeClock,
    MetricError,
    MetricsRegistry,
    MonotonicClock,
    Observability,
    Tracer,
    parse_prometheus_text,
)
from repro.realms import jobs_realm
from repro.timeutil import ts
from repro.ui import ApiServer, XdmodApi
from tests.conftest import build_two_site_federation


def make_job(job_id):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 5, 1), start_ts=ts(2017, 5, 1, 1),
        end_ts=ts(2017, 5, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource="r1",
    )


# -- clocks -------------------------------------------------------------------


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_fake_clock_is_frozen_by_default(self):
        clock = FakeClock(100.0)
        assert clock.now() == 100.0
        assert clock.now() == 100.0
        clock.advance(2.5)
        assert clock.now() == 102.5

    def test_fake_clock_auto_advance(self):
        clock = FakeClock(0.0, auto_advance=0.25)
        assert clock.now() == 0.0
        assert clock.now() == 0.25
        assert clock.now() == 0.5

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


# -- registry units -----------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events", ("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc(2.0)
        counter.labels(kind="b").inc()
        assert registry.value("events_total", kind="a") == 3.0
        assert registry.value("events_total", kind="b") == 1.0
        assert registry.value("events_total", kind="missing") == 0.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        with pytest.raises(MetricError):
            counter.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth_rows")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert registry.value("queue_depth_rows") == 13.0

    def test_histogram_observe_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "op_seconds", "op latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        count, total = registry.histogram_stats("op_seconds")
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        for name in ("Events_total", "events", "events_count", "1e_total"):
            with pytest.raises(MetricError):
                registry.counter(name)

    def test_bad_name_rejected_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        with pytest.raises(MetricError):
            registry.counter("notASuffix")

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            registry.gauge("events_total")
        with pytest.raises(MetricError):
            registry.counter("events_total", labelnames=("other",))
        # identical re-registration is fine (idempotent wiring)
        registry.counter("events_total", labelnames=("kind",))

    def test_unknown_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            counter.labels(color="red")

    def test_disabled_registry_noops_and_renders_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("events_total", labelnames=("kind",)).labels(
            kind="a"
        ).inc()
        registry.gauge("depth_rows").set(9)
        registry.histogram("op_seconds").observe(1.0)
        assert registry.value("events_total", kind="a") == 0.0
        assert registry.histogram_stats("op_seconds") == (0, 0.0)
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {}


class TestPrometheusExposition:
    def _populated(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "events_total", "Events seen", ("kind", "site")
        )
        counter.labels(kind="job", site="a").inc(4)
        counter.labels(kind='we"ird\\',  site="b\n").inc()
        registry.gauge("lag_rows", "Replication lag").set(17)
        hist = registry.histogram(
            "op_seconds", "Latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(2.0)
        return registry

    def test_render_has_help_type_and_samples(self):
        text = self._populated().render_prometheus()
        assert "# HELP events_total Events seen\n" in text
        assert "# TYPE events_total counter\n" in text
        assert "# TYPE lag_rows gauge\n" in text
        assert "# TYPE op_seconds histogram\n" in text
        assert 'events_total{kind="job",site="a"} 4\n' in text
        assert 'op_seconds_bucket{le="+Inf"} 3\n' in text
        assert "op_seconds_count 3\n" in text
        assert text.endswith("\n")

    def test_round_trips_through_parser(self):
        registry = self._populated()
        parsed = parse_prometheus_text(registry.render_prometheus())
        assert parsed.types["events_total"] == "counter"
        assert parsed.types["op_seconds"] == "histogram"
        assert parsed.helps["lag_rows"] == "Replication lag"
        assert parsed.value("events_total", kind="job", site="a") == 4
        assert parsed.value("events_total", kind='we"ird\\', site="b\n") == 1
        assert parsed.value("lag_rows") == 17
        assert parsed.value("op_seconds_bucket", le="0.1") == 1
        assert parsed.value("op_seconds_bucket", le="1") == 2
        assert parsed.value("op_seconds_bucket", le="+Inf") == 3
        assert parsed.value("op_seconds_count") == 3
        assert parsed.value("op_seconds_sum") == pytest.approx(2.55)

    def test_parser_rejects_duplicate_samples(self):
        with pytest.raises(MetricError):
            parse_prometheus_text("a_total 1\na_total 2\n")


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_parents(self):
        tracer = Tracer(FakeClock(auto_advance=1.0))
        with tracer.span("outer", site="a"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished[0], tracer.finished[1]
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attrs == {"site": "a"}
        assert outer.duration_s == pytest.approx(3.0)

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.finished
        assert span.attrs["error"] == "RuntimeError"

    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(FakeClock(), max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.spans_dropped == 3

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(FakeClock(), enabled=False)
        with tracer.span("ignored"):
            pass
        assert tracer.finished == ()
        assert tracer.to_jsonl() == ""

    def test_slow_span_report(self):
        tracer = Tracer(FakeClock(auto_advance=1.0))
        with tracer.span("fast"):
            pass
        with tracer.span("slow"):
            with tracer.span("fast"):
                pass
        report = tracer.slow_spans(top=2)
        assert report[0]["name"] == "slow"
        assert report[0]["count"] == 1
        assert report[1]["name"] == "fast"
        assert report[1]["count"] == 2
        text = tracer.render_slow_report()
        assert "slow" in text and "fast" in text

    def test_jsonl_is_byte_identical_across_runs(self):
        def run():
            tracer = Tracer(FakeClock(auto_advance=0.5))
            with tracer.span("a", step=1):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return tracer.to_jsonl()

        first, second = run(), run()
        assert first == second
        assert first.endswith("\n")
        for line in first.splitlines():
            record = json.loads(line)
            assert set(record) == {
                "span_id", "parent_id", "name", "start_s", "end_s",
                "duration_s", "attrs", "trace_id", "instance",
                "remote_parent",
            }


# -- instrumented hot paths ---------------------------------------------------


class TestInstrumentedPaths:
    def test_etl_and_warehouse_metrics(self, instance):
        registry = instance.obs.registry
        assert registry.value(
            "etl_ingest_records_total", source="jobs"
        ) > 0
        count, total = registry.histogram_stats(
            "etl_ingest_seconds", source="jobs"
        )
        assert count >= 1 and total >= 0.0
        assert registry.value(
            "warehouse_binlog_events_total", schema="modw"
        ) > 0
        names = {span.name for span in instance.obs.tracer.finished}
        assert "ingest_jobs" in names

    def test_aggregation_metrics(self, aggregated_instance):
        registry = aggregated_instance.obs.registry
        assert registry.value(
            "aggregation_rows_total", realm="jobs", mode="full"
        ) > 0
        count, _ = registry.histogram_stats(
            "aggregation_build_seconds", realm="jobs", mode="full"
        )
        assert count >= 1
        names = {
            span.name for span in aggregated_instance.obs.tracer.finished
        }
        assert "aggregate_jobs" in names

    def test_federation_sync_metrics(self, federation):
        hub, satellites, _, _ = federation
        registry = hub.obs.registry
        hub.sync()
        assert registry.value("federation_sync_cycles_total", hub="hub") >= 1
        assert registry.value(
            "replication_events_applied_total", channel="site0"
        ) > 0
        count, _ = registry.histogram_stats(
            "replication_pump_seconds", channel="site0"
        )
        assert count >= 1
        assert registry.value(
            "warehouse_apply_events_total", schema="fed_site0"
        ) > 0
        # synced federation has no lag and no quarantined events
        ingest_jobs(satellites["site0"].schema, [make_job(4242)])
        hub.sync()
        assert registry.value("replication_lag_rows", member="site0") == 0.0
        assert (
            registry.value("federation_dead_letters_rows", member="site0")
            == 0.0
        )
        names = {span.name for span in hub.obs.tracer.finished}
        assert "replication_pump" in names

    def test_circuit_transition_counter(self, federation):
        hub, satellites, _, _ = federation
        # standing lag so sync() actually exercises the (broken) channel
        ingest_jobs(satellites["site0"].schema, [make_job(9999)])
        member = hub.member("site0")
        member.breaker = CircuitBreaker(failure_threshold=1, cooldown=1000)

        def explode(*args, **kwargs):
            raise RuntimeError("satellite unreachable")

        member.channel.catch_up = explode
        hub.sync()  # failure -> breaker opens
        hub.sync()  # breaker refuses -> member skipped, still open
        registry = hub.obs.registry
        assert registry.value(
            "federation_circuit_transitions_total",
            member="site0", state="open",
        ) == 1.0


# -- REST surfaces ------------------------------------------------------------


class TestRestSurfaces:
    def _federated_api(self):
        hub, satellites, _, _ = build_two_site_federation()
        monitor = FederationMonitor(hub)
        api = XdmodApi(
            {"jobs": jobs_realm()},
            {name: hub.database.schema(f"fed_{name}") for name in satellites},
            obs=hub.obs,
            monitor=monitor,
        )
        return hub, satellites, api

    def test_metrics_endpoint_parses_as_prometheus_text(self):
        hub, _, api = self._federated_api()
        hub.sync()
        status, content_type, body = api.handle_raw("/metrics", {})
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus_text(body.decode("utf-8"))
        assert parsed.value("federation_sync_cycles_total", hub="hub") >= 1
        assert "replication_pump_seconds" in parsed.types

    def test_metrics_endpoint_404_without_obs(self, aggregated_instance):
        api = XdmodApi({"jobs": jobs_realm()}, aggregated_instance.schema)
        status, payload = api.handle("/metrics", {})
        assert status == 404

    def test_health_readiness_payload(self):
        hub, satellites, api = self._federated_api()
        status, payload = api.handle("/health", {})
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["degraded_members"] == []
        assert payload["max_lag"] == 0
        ingest_jobs(satellites["site0"].schema, [make_job(31337)])
        status, payload = api.handle("/health", {})
        assert status == 200  # degraded is still a 200 -- readiness payload
        assert payload["status"] == "degraded"
        assert "site0" in payload["degraded_members"]
        assert payload["max_lag"] > 0

    def test_status_payload(self):
        hub, _, api = self._federated_api()
        hub.sync()
        status, payload = api.handle("/status", {})
        assert status == 200
        assert payload["hub"] == "hub"
        assert {m["name"] for m in payload["members"]} == {"site0", "site1"}
        for member in payload["members"]:
            assert member["health"] == "ok"
            assert "avg_sync_seconds" in member
        assert "federation_sync_cycles_total" in payload["metrics"]

    def test_status_404_without_monitor(self, aggregated_instance):
        api = XdmodApi({"jobs": jobs_realm()}, aggregated_instance.schema)
        status, payload = api.handle("/status", {})
        assert status == 404

    def test_metrics_over_live_server(self):
        hub, _, api = self._federated_api()
        hub.sync()
        with ApiServer(api) as server:
            request = urllib.request.Request(server.url + "/metrics")
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
                assert (
                    response.headers["Content-Type"]
                    == PROMETHEUS_CONTENT_TYPE
                )
                text = response.read().decode("utf-8")
        parsed = parse_prometheus_text(text)
        assert parsed.value("federation_sync_cycles_total", hub="hub") >= 1


# -- monitor + live replicator ------------------------------------------------


class TestMonitorRates:
    def test_status_reads_rates_from_registry(self, federation):
        hub, _, _, _ = federation
        hub.sync()
        status = FederationMonitor(hub).status()
        member = next(m for m in status.members if m.name == "site0")
        assert member.syncs >= 1
        assert member.sync_seconds >= 0.0
        assert member.avg_sync_seconds >= 0.0
        assert member.events_per_second >= 0.0


class TestLiveReplicatorClock:
    def test_wait_until_current_times_out_on_standing_lag(self, federation):
        hub, satellites, _, _ = federation
        ingest_jobs(satellites["site0"].schema, [make_job(5555)])
        live = LiveReplicator(
            hub, interval_s=0.01, clock=FakeClock(auto_advance=0.5)
        )
        # never started, so lag never drains; the fake clock walks the
        # deadline forward and the wait must give up on its own
        assert live.wait_until_current(timeout=2.0) is False

    def test_wait_until_current_succeeds_after_sync(self, federation):
        hub, _, _, _ = federation
        live = LiveReplicator(
            hub, interval_s=0.01, clock=FakeClock(auto_advance=0.5)
        )
        hub.sync()
        assert live.wait_until_current(timeout=2.0) is True


# -- determinism end to end ---------------------------------------------------


class TestDeterministicTraces:
    @staticmethod
    def _run():
        obs = Observability(clock=FakeClock(auto_advance=0.001))
        instance = XdmodInstance("det", obs=obs)
        instance.pipeline.ingest_parsed_jobs([make_job(i) for i in range(5)])
        instance.aggregate(["day", "month"])
        return obs

    def test_traces_byte_identical_across_runs(self):
        first, second = self._run(), self._run()
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
        assert first.tracer.to_jsonl() != ""

    def test_metrics_render_identical_across_runs(self):
        first, second = self._run(), self._run()
        assert (
            first.registry.render_prometheus()
            == second.registry.render_prometheus()
        )

    def test_federated_sync_traces_deterministic(self):
        def run():
            obs = Observability(clock=FakeClock(auto_advance=0.001))
            sat = XdmodInstance("s0")
            sat.pipeline.ingest_parsed_jobs(
                [make_job(i) for i in range(3)]
            )
            hub = FederationHub("hub", obs=obs)
            hub.join(sat, mode="tight")
            hub.sync()
            return obs.tracer.to_jsonl()

        first, second = run(), run()
        assert first == second
        assert "replication_pump" in first


# -- CLI ----------------------------------------------------------------------


class TestObsCli:
    def test_metrics_dump(self, capsys):
        assert main(["obs", "metrics", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        parsed = parse_prometheus_text(out)
        assert "etl_ingest_records_total" in parsed.types

    def test_slow_report(self, capsys):
        assert main(["obs", "slow", "--scale", "0.05", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "span" in out or "name" in out

    def test_trace_tail_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        tracer = Tracer(FakeClock(auto_advance=1.0))
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        tracer.write_jsonl(trace)
        assert main(
            ["obs", "trace", "--trace-file", str(trace), "--tail", "2"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["name"] == "s3"
