"""Quarter/year periods, loose-member ops, report aggregate view."""

from __future__ import annotations

import pytest

from repro.core import FederationMonitor
from repro.etl import ingest_jobs
from repro.realms import jobs_realm
from repro.simulators import WorkloadConfig, WorkloadGenerator
from repro.timeutil import ts
from repro.ui import ChartBuilder, ChartSpec, ReportDefinition, ReportGenerator
from tests.conftest import T0, build_two_site_federation

END = ts(2018, 1, 1)


class TestCoarsePeriods:
    @pytest.fixture()
    def quarterly_instance(self, instance):
        instance.aggregate(["quarter", "year"])
        return instance

    def test_quarter_labels(self, quarterly_instance):
        result = jobs_realm().query(
            quarterly_instance.schema, "cpu_hours",
            start=T0, end=END, period="quarter",
        )
        labels = {r.period_label for r in result.rows}
        assert labels == {"2017 Q1"}  # two weeks of January data

    def test_year_conserves_quarters(self, quarterly_instance):
        realm = jobs_realm()
        quarters = realm.query(
            quarterly_instance.schema, "cpu_hours",
            start=T0, end=END, period="quarter",
        ).totals()["total"]
        years = realm.query(
            quarterly_instance.schema, "cpu_hours",
            start=T0, end=END, period="year",
        ).totals()["total"]
        assert years == pytest.approx(quarters)

    def test_quarterly_chart(self, quarterly_instance):
        chart = ChartBuilder(jobs_realm(), quarterly_instance.schema).timeseries(
            "n_jobs_ended", start=T0, end=END, period="quarter",
        )
        assert chart.series[0].points[0][0] == "2017 Q1"


class TestLooseMemberOps:
    def test_monitor_reports_loose_staleness(self):
        hub, satellites, _, _ = build_two_site_federation(mode_b="loose")
        from repro.etl import ParsedJob

        ingest_jobs(satellites["site1"].schema, [
            ParsedJob(
                job_id=9999, user="u", pi="p", queue="q", application="a",
                submit_ts=ts(2017, 2, 1), start_ts=ts(2017, 2, 1, 1),
                end_ts=ts(2017, 2, 1, 2), nodes=1, cores=2,
                req_walltime_s=3600, state="COMPLETED", exit_code=0,
                resource="beta_cluster",
            )
        ])
        monitor = FederationMonitor(hub)
        status = monitor.status()
        loose = next(m for m in status.members if m.name == "site1")
        assert loose.mode == "loose"
        assert loose.lag_events > 0
        hub.ship_loose()
        status = monitor.status()
        loose = next(m for m in status.members if m.name == "site1")
        assert loose.lag_events == 0
        assert "loose" in monitor.render()

    def test_ship_via_file_through_hub(self, tmp_path):
        hub, satellites, _, _ = build_two_site_federation(mode_b="loose")
        member = hub.member("site1")
        shipped = member.loose_channel.ship_via_file(tmp_path / "site1.dump.gz")
        assert (tmp_path / "site1.dump.gz").exists()
        assert shipped.table("fact_job").checksum() == (
            satellites["site1"].schema.table("fact_job").checksum()
        )


class TestReportAggregateView:
    def test_aggregate_chart_spec(self, aggregated_instance):
        definition = ReportDefinition(
            name="agg", title="Aggregate",
            charts=(
                ChartSpec("Jobs by queue (whole range)", "n_jobs_ended",
                          group_by="queue", view="aggregate"),
            ),
        )
        report = ReportGenerator(
            ChartBuilder(jobs_realm(), aggregated_instance.schema)
        ).generate(definition, start=T0, end=END)
        chart = report.charts[0]
        assert chart.view == "aggregate"
        assert all(len(s.points) == 1 for s in chart.series)

    def test_filtered_chart_spec(self, aggregated_instance):
        definition = ReportDefinition(
            name="filtered", title="Filtered",
            charts=(
                ChartSpec("Normal queue only", "cpu_hours",
                          group_by="queue", filters={"queue": ("normal",)}),
            ),
        )
        report = ReportGenerator(
            ChartBuilder(jobs_realm(), aggregated_instance.schema)
        ).generate(definition, start=T0, end=END)
        assert report.charts[0].labels == ["normal"]


class TestWorkloadEdges:
    def test_zero_envelope_generates_nothing(self):
        config = WorkloadConfig(
            seed=1, jobs_per_day=50,
            monthly_activity=tuple([0.0] * 12),
        )
        requests = list(
            WorkloadGenerator(config).generate(T0, T0 + 30 * 86400)
        )
        assert requests == []

    def test_degenerate_window(self):
        generator = WorkloadGenerator(WorkloadConfig(seed=1))
        assert list(generator.generate(T0, T0)) == []

    def test_directory_covers_all_request_users(self):
        generator = WorkloadGenerator(WorkloadConfig(seed=2, jobs_per_day=30))
        directory = generator.person_directory()
        for request in generator.generate(T0, T0 + 5 * 86400):
            assert request.user in directory
            assert directory[request.user].pi == request.pi
