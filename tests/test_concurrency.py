"""Runtime lock sanitizer + real-thread regression tests for the races
fixed in the concurrency pass.

The acceptance scenario lives in :class:`TestSanitizerDetectsInversions`:
a deliberately-inverted two-lock sequence is caught by ``SanitizedLock``
(without needing an actual deadlock), and the same sequence reordered is
clean — proving the sanitizer detects real inversions at test time.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import LockMonitor, SanitizedLock
from repro.warehouse import ColumnType, Database, TableSchema, make_columns

C = ColumnType


def run_threads(workers, n=None):
    """Start, join, and re-raise the first worker exception."""
    errors = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except BaseException as exc:  # propagated to the test thread
                errors.append(exc)

        return inner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force frequent preemption
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        sys.setswitchinterval(old)
    if errors:
        raise errors[0]


# -- sanitizer unit behavior --------------------------------------------------


class TestSanitizerDetectsInversions:
    def test_inverted_two_lock_order_is_caught(self):
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        with a:
            with b:
                pass
        with b:  # deliberate inversion: B then A after A then B
            with a:
                pass
        assert len(monitor.inversions) == 1
        inv = monitor.inversions[0]
        assert {inv.first, inv.second} == {"A", "B"}
        assert "inversion" in monitor.report()

    def test_same_sequence_reordered_is_clean(self):
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        for _ in range(2):  # consistent A-then-B order every time
            with a:
                with b:
                    pass
        assert monitor.inversions == ()

    def test_fixture_style_gate_fails_on_inversion(self):
        # what the lock_sanitizer fixture does at teardown
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        with a, b:
            pass
        with b, a:
            pass
        with pytest.raises(pytest.fail.Exception):
            _fail_on_inversions(monitor)

    def test_cross_thread_inversion_detected(self):
        # The order graph is global across threads: thread 1 takes A->B,
        # thread 2 later takes B->A.  The orders are sequenced with an
        # event so the inversion is *detected* without ever *deadlocking*
        # — which is the point of the sanitizer: single overlapping
        # schedules are not required to prove the hazard.
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        first_done = threading.Event()

        def t1():
            with a:
                with b:
                    pass
            first_done.set()

        def t2():
            first_done.wait(timeout=5.0)
            with b:
                with a:
                    pass

        run_threads([t1, t2])
        assert len(monitor.inversions) == 1
        inv = monitor.inversions[0]
        assert inv.site.thread_name != inv.prior_site.thread_name

    def test_reentrant_rlock_is_not_an_inversion(self):
        monitor = LockMonitor()
        r = SanitizedLock("R", monitor, rlock=True)
        with r:
            with r:
                pass
        assert monitor.inversions == ()
        assert monitor.edges() == {}

    def test_long_hold_recorded_with_fake_clock(self):
        t = [0.0]
        monitor = LockMonitor(long_hold_s=0.05, clock=lambda: t[0])
        lock = SanitizedLock("L", monitor, rlock=False)
        lock.acquire()
        t[0] = 0.2
        lock.release()
        assert len(monitor.long_holds) == 1
        hold = monitor.long_holds[0]
        assert hold.lock_name == "L"
        assert hold.held_s == pytest.approx(0.2)

    def test_short_hold_not_recorded(self):
        t = [0.0]
        monitor = LockMonitor(long_hold_s=0.05, clock=lambda: t[0])
        lock = SanitizedLock("L", monitor)
        with lock:
            t[0] = 0.01
        assert monitor.long_holds == ()

    def test_metrics_binding_exports_sanitizer_series(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        t = [0.0]
        monitor = LockMonitor(long_hold_s=0.05, clock=lambda: t[0])
        monitor.bind_metrics(registry)
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        with a, b:
            pass
        with b:
            t[0] = 0.2
            with a:
                pass
        text = registry.render_prometheus()
        assert 'sanitizer_lock_inversions_total{first="B",second="A"} 1' in text
        assert "sanitizer_long_holds_total" in text
        assert "sanitizer_lock_hold_seconds" in text

    def test_reset_clears_state(self):
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        with a, b:
            pass
        with b, a:
            pass
        monitor.reset()
        assert monitor.inversions == ()
        assert monitor.edges() == {}


@pytest.fixture()
def _sanitizer_state_restored():
    """Save/restore the global monitor so these tests hold under both a
    bare run and ``REPRO_LOCK_SANITIZER=1`` (which activates at import,
    as CI's sanitizer-enabled pass does)."""
    prior = sanitizer.current_monitor()
    try:
        yield
    finally:
        sanitizer.deactivate()
        if prior is not None:
            sanitizer.activate(prior)


class TestCreateLock:
    def test_plain_lock_when_inactive(self, _sanitizer_state_restored):
        sanitizer.deactivate()
        assert sanitizer.current_monitor() is None
        lock = sanitizer.create_lock("X")
        assert not isinstance(lock, SanitizedLock)
        # duck-compatible with threading.Lock
        with lock:
            pass

    def test_rlock_when_inactive_is_reentrant(self, _sanitizer_state_restored):
        sanitizer.deactivate()
        lock = sanitizer.create_lock("X", rlock=True)
        with lock:
            with lock:
                pass

    def test_sanitized_when_active(self, _sanitizer_state_restored):
        sanitizer.deactivate()
        monitor = sanitizer.activate()
        lock = sanitizer.create_lock("X")
        assert isinstance(lock, SanitizedLock)
        assert sanitizer.enabled()
        assert sanitizer.current_monitor() is monitor
        sanitizer.deactivate()
        assert not sanitizer.enabled()

    def test_production_locks_instrumented_under_fixture(self, lock_sanitizer):
        # with the fixture active, warehouse locks are SanitizedLock and
        # ordinary single-lock use records hold times, not inversions
        db = Database()
        schema = db.create_schema("modw")
        assert isinstance(schema._lock, SanitizedLock)
        schema.create_table(_table_schema("jobs"))
        assert lock_sanitizer.inversions == ()


# -- regression: the three fixed races, with real threads ---------------------


def _table_schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        make_columns([
            ("id", C.INT, False),
            ("val", C.FLOAT),
        ]),
        primary_key=("id",),
    )


class TestSchemaDataVersionRace:
    def test_concurrent_mutators_never_lose_a_bump(self):
        """Regression: ``Schema._bump_data_version`` was an unlocked
        ``+= 1``; concurrent table writers lost bumps, so the serving
        cache could treat changed data as fresh.  Each thread writes its
        own table — the schema-level version counter is the only shared
        state."""
        db = Database()
        schema = db.create_schema("modw")
        n_threads, n_rows = 8, 200
        tables = [
            schema.create_table(_table_schema(f"t{i}")) for i in range(n_threads)
        ]
        start_version = schema.data_version

        def writer(table):
            def run():
                for i in range(n_rows):
                    table.insert({"id": i, "val": float(i)})

            return run

        run_threads([writer(t) for t in tables])
        assert schema.data_version - start_version == n_threads * n_rows

    def test_create_table_still_bumps_reentrantly(self):
        db = Database()
        schema = db.create_schema("modw")
        before = schema.data_version
        schema.create_table(_table_schema("jobs"))
        assert schema.data_version > before


class TestCacheEntryPagesRace:
    def test_concurrent_page_memoization_respects_bound(self):
        """Regression: ``respond()`` checked ``len(entry.pages) < cap``
        and inserted without a lock; concurrent clients with distinct
        windows could blow past the bound and race the dict."""
        from repro.ui.serving import MAX_PAGES_PER_ENTRY, _CacheEntry

        entry = _CacheEntry({"rows": []}, versions=(1,))
        n_threads, n_keys = 8, 64

        def worker(seed):
            def run():
                for k in range(n_keys):
                    key = ((seed * n_keys + k) % 97, 10)
                    memo = entry.get_page(key)
                    if memo is None:
                        entry.memo_page(key, {"page": key}, f"etag-{key}")

            return run

        run_threads([worker(s) for s in range(n_threads)])
        assert len(entry.pages) <= MAX_PAGES_PER_ENTRY

    def test_memoized_window_round_trips(self):
        from repro.ui.serving import _CacheEntry

        entry = _CacheEntry({"rows": []}, versions=(1,))
        entry.memo_page((0, 10), {"page": 1}, "etag-1")
        assert entry.get_page((0, 10)) == ({"page": 1}, "etag-1")
        assert entry.get_page((10, 10)) is None


class TestSessionTableRace:
    def test_concurrent_expired_token_checks_do_not_500(self):
        """Regression: two requests presenting the same expired token
        both reached ``del self._sessions[token]``; the loser raised
        KeyError, which surfaced as a 500."""
        from repro.auth.accounts import Session
        from repro.ui.rest import XdmodApi

        api = XdmodApi({}, {}, require_auth=True)
        now = time.time()
        expired = Session(
            token="tok-expired",
            username="u",
            instance="i",
            method="local",
            issued_at=now - 100.0,
            expires_at=now - 1.0,
            capabilities=frozenset(),
        )
        api._sessions[expired.token] = expired
        headers = {"Authorization": "Bearer tok-expired"}

        results = []

        def check():
            # pre-fix this raised KeyError on the losing thread
            results.append(api._authorized(headers))

        run_threads([check] * 8)
        assert results == [False] * 8
        assert "tok-expired" not in api._sessions

    def test_register_evicts_expired_and_keeps_live(self):
        from repro.auth.accounts import Session
        from repro.ui.rest import XdmodApi

        api = XdmodApi({}, {}, require_auth=True)
        now = time.time()

        def session(token, expires):
            return Session(
                token=token,
                username="u",
                instance="i",
                method="local",
                issued_at=now - 100.0,
                expires_at=expires,
                capabilities=frozenset(),
            )

        api._sessions["old"] = session("old", now - 1.0)
        api.register_session(session("new", now + 100.0))
        assert "old" not in api._sessions
        assert "new" in api._sessions
        assert api._authorized({"Authorization": "Bearer new"})


# -- production lock discipline under the sanitizer ---------------------------


class TestProductionPathsUnderSanitizer:
    def test_ingest_and_serve_cycle_has_no_inversions(self, lock_sanitizer):
        """Drive warehouse writes and cache traffic with the sanitizer
        active; the teardown gate fails the test on any inversion."""
        from repro.ui.serving import QueryCache

        db = Database()
        schema = db.create_schema("modw")
        table = schema.create_table(_table_schema("jobs"))
        cache = QueryCache(max_entries=4)

        def writer():
            for i in range(50):
                table.insert({"id": i, "val": float(i)})

        def reader():
            for i in range(50):
                key = ("q", i % 8)
                versions = (schema.data_version,)
                entry, state = cache.lookup(key, versions)
                if entry is None:
                    cache.store(key, versions, {"i": i})

        run_threads([writer, reader])
        assert lock_sanitizer.inversions == ()

    def test_report_mentions_edge_counts(self):
        monitor = LockMonitor()
        a = SanitizedLock("A", monitor)
        b = SanitizedLock("B", monitor)
        with a, b:
            pass
        assert "1 order edge(s)" in monitor.report()


def _fail_on_inversions(monitor: LockMonitor) -> None:
    """Shared with the ``lock_sanitizer`` fixture teardown."""
    if monitor.inversions:
        pytest.fail(
            "lock-order inversion detected by the runtime sanitizer:\n"
            + monitor.report()
        )
