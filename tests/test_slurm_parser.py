"""sacct shredder: formats, quirks, and error handling."""

from __future__ import annotations

import pytest

from repro.etl import (
    SacctParseError,
    normalize_state,
    parse_exit_code,
    parse_sacct_line,
    parse_sacct_log,
    parse_timelimit,
)
from repro.simulators import sacct_header, to_sacct_line

GOOD_LINE = (
    "123|alice|pi001|normal|namd|2017-01-02T08:00:00|2017-01-02T09:00:00|"
    "2017-01-02T15:30:00|2|32|12:00:00|COMPLETED|0:0|comet"
)


class TestTimelimit:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("01:30:00", 5400),
            ("00:05:00", 300),
            ("2-00:00:00", 172800),
            ("1-12:00:00", 129600),
            ("10:30", 37800),
            ("UNLIMITED", 0),
            ("Partition_Limit", 0),
            ("", 0),
        ],
    )
    def test_formats(self, text, seconds):
        assert parse_timelimit(text) == seconds

    def test_garbage_rejected(self):
        with pytest.raises(SacctParseError):
            parse_timelimit("1:2:3:4")


class TestStateAndExit:
    def test_cancelled_by_uid(self):
        assert normalize_state("CANCELLED by 5001") == "CANCELLED"

    def test_plain_states_pass_through(self):
        assert normalize_state("completed") == "COMPLETED"
        assert normalize_state("NODE_FAIL") == "NODE_FAIL"

    def test_exit_code(self):
        assert parse_exit_code("0:0") == 0
        assert parse_exit_code("137:9") == 137
        assert parse_exit_code("") == 0


class TestParseLine:
    def test_good_line(self):
        job = parse_sacct_line(GOOD_LINE)
        assert job.job_id == 123
        assert job.user == "alice"
        assert job.pi == "pi001"
        assert job.cores == 32
        assert job.req_walltime_s == 12 * 3600
        assert job.resource == "comet"
        assert job.walltime_s == 6.5 * 3600
        assert job.wait_s == 3600

    def test_unknown_start_means_never_started(self):
        line = GOOD_LINE.replace("2017-01-02T09:00:00", "Unknown").replace(
            "COMPLETED", "CANCELLED by 1"
        )
        job = parse_sacct_line(line)
        assert job.state == "CANCELLED"
        assert job.start_ts == job.end_ts
        assert job.walltime_s == 0

    def test_array_job_id(self):
        line = GOOD_LINE.replace("123|", "123_7|", 1)
        assert parse_sacct_line(line).job_id == 123

    def test_wrong_field_count(self):
        with pytest.raises(SacctParseError):
            parse_sacct_line("a|b|c")

    def test_bad_timestamp(self):
        with pytest.raises(SacctParseError):
            parse_sacct_line(GOOD_LINE.replace("2017-01-02T08:00:00", "yesterday"))

    def test_empty_cluster_uses_default(self):
        line = GOOD_LINE[: GOOD_LINE.rfind("|") + 1]
        job = parse_sacct_line(line, default_resource="fallback")
        assert job.resource == "fallback"


class TestParseLog:
    def test_header_and_blank_lines_skipped(self):
        text = "\n".join([sacct_header(), "", GOOD_LINE, ""])
        jobs = list(parse_sacct_log(text))
        assert len(jobs) == 1

    def test_job_steps_skipped(self):
        step = GOOD_LINE.replace("123|", "123.batch|", 1)
        jobs = list(parse_sacct_log("\n".join([GOOD_LINE, step])))
        assert len(jobs) == 1
        jobs = list(
            parse_sacct_log("\n".join([GOOD_LINE, step]), skip_steps=False)
        )
        assert len(jobs) == 2

    def test_strict_vs_lenient(self):
        text = "\n".join([GOOD_LINE, "garbage|line"])
        with pytest.raises(SacctParseError):
            list(parse_sacct_log(text))
        jobs = list(parse_sacct_log(text, strict=False))
        assert len(jobs) == 1

    def test_round_trip_with_simulator(self, job_records):
        """Every simulated record survives render -> parse intact."""
        parsed = list(
            parse_sacct_log(
                "\n".join(to_sacct_line(r) for r in job_records),
                default_resource="testcluster",
            )
        )
        assert len(parsed) == len(job_records)
        for rec, job in zip(sorted(job_records, key=lambda r: (r.end_ts, r.job_id)),
                            sorted(parsed, key=lambda j: (j.end_ts, j.job_id))):
            assert job.job_id == rec.job_id
            assert job.user == rec.user
            assert job.cores == rec.cores
            assert job.state == rec.state
            assert job.submit_ts == rec.submit_ts
            assert job.end_ts == rec.end_ts
