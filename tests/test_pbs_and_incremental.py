"""PBS shredder and incremental aggregation."""

from __future__ import annotations

import pytest

from repro.aggregation import Aggregator
from repro.etl import (
    IngestPipeline,
    PbsParseError,
    ingest_jobs,
    parse_pbs_log,
    parse_pbs_record,
    parse_sacct_log,
    to_pbs_log,
)
from repro.simulators import to_sacct_log
from repro.timeutil import ts
from repro.warehouse import Database

GOOD_PBS = (
    "03/14/2017 12:34:56;E;123.comet;user=alice group=grp account=pi001 "
    "jobname=namd queue=normal qtime=1489489000 start=1489490000 "
    "end=1489497200 Resource_List.walltime=12:00:00 "
    "Resource_List.nodect=2 Resource_List.ncpus=32 Exit_status=0 "
    "server=comet"
)


class TestPbsParser:
    def test_end_record(self):
        job = parse_pbs_record(GOOD_PBS)
        assert job is not None
        assert job.job_id == 123
        assert job.user == "alice"
        assert job.pi == "pi001"
        assert job.cores == 32 and job.nodes == 2
        assert job.submit_ts == 1489489000
        assert job.walltime_s == 7200
        assert job.req_walltime_s == 12 * 3600
        assert job.state == "COMPLETED"
        assert job.resource == "comet"

    def test_non_end_records_skipped(self):
        queue_record = GOOD_PBS.replace(";E;", ";Q;")
        assert parse_pbs_record(queue_record) is None
        jobs = list(parse_pbs_log("\n".join([queue_record, GOOD_PBS])))
        assert len(jobs) == 1

    @pytest.mark.parametrize("exit_status,state", [
        ("0", "COMPLETED"), ("1", "FAILED"), ("271", "TIMEOUT"),
        ("-1", "CANCELLED"),
    ])
    def test_exit_status_state_inference(self, exit_status, state):
        line = GOOD_PBS.replace("Exit_status=0", f"Exit_status={exit_status}")
        assert parse_pbs_record(line).state == state

    def test_array_job_id(self):
        line = GOOD_PBS.replace(";123.comet;", ";123[4].comet;")
        assert parse_pbs_record(line).job_id == 123

    def test_malformed_records(self):
        with pytest.raises(PbsParseError):
            parse_pbs_record("not a record")
        with pytest.raises(PbsParseError):
            parse_pbs_record(GOOD_PBS.replace(";E;", ";X;"))
        with pytest.raises(PbsParseError):
            parse_pbs_record(GOOD_PBS.replace("qtime=1489489000 ", ""))

    def test_lenient_mode(self):
        text = "\n".join(["garbage", GOOD_PBS, "# comment", ""])
        with pytest.raises(PbsParseError):
            list(parse_pbs_log(text))
        assert len(list(parse_pbs_log(text, strict=False))) == 1

    def test_missing_account_falls_back_to_group(self):
        line = GOOD_PBS.replace("account=pi001 ", "")
        assert parse_pbs_record(line).pi == "grp"


class TestFormatEquivalence:
    def test_sacct_and_pbs_paths_yield_identical_facts(self, job_records):
        """The resource-manager-agnostic claim: same jobs through either
        shredder produce the same warehouse contents."""
        slurm_jobs = sorted(
            parse_sacct_log(to_sacct_log(job_records),
                            default_resource="testcluster"),
            key=lambda j: j.job_id,
        )
        pbs_jobs = sorted(
            parse_pbs_log(to_pbs_log(job_records),
                          default_resource="testcluster"),
            key=lambda j: j.job_id,
        )
        assert len(slurm_jobs) == len(pbs_jobs)
        for a, b in zip(slurm_jobs, pbs_jobs):
            # PBS always records nodect >= 1, sacct records 0 for jobs
            # that never started — compare on the PBS convention
            assert (a.job_id, a.user, a.pi, a.queue, a.cores,
                    max(a.nodes, 1), a.state) == (
                b.job_id, b.user, b.pi, b.queue, b.cores, max(b.nodes, 1),
                b.state,
            )
            assert a.submit_ts == b.submit_ts
            assert a.end_ts == b.end_ts
            # sacct truncates the requested walltime to minutes
            assert abs(a.req_walltime_s - b.req_walltime_s) < 60

    def test_pipeline_ingest_pbs(self, job_records):
        pipe = IngestPipeline(Database())
        n = pipe.ingest_pbs(to_pbs_log(job_records),
                            default_resource="testcluster")
        assert n == len(job_records)


class TestIncrementalAggregation:
    def _jobs(self, start_id, n, *, base_day=2):
        from repro.etl import ParsedJob

        out = []
        for i in range(n):
            start = ts(2017, 1, base_day) + i * 7200
            out.append(ParsedJob(
                job_id=start_id + i, user=f"u{i % 5}", pi="p", queue="q",
                application="a", submit_ts=start - 600, start_ts=start,
                end_ts=start + 5400, nodes=1, cores=4,
                req_walltime_s=7200, state="COMPLETED", exit_code=0,
                resource="r1",
            ))
        return out

    def test_incremental_equals_full_rebuild(self):
        schema = Database().create_schema("modw")
        aggregator = Aggregator(schema)
        ingest_jobs(schema, self._jobs(1, 20))
        assert aggregator.aggregate_jobs_incremental("month") == 20
        ingest_jobs(schema, self._jobs(100, 15, base_day=20))
        assert aggregator.aggregate_jobs_incremental("month") == 15

        incremental_rows = sorted(
            tuple(sorted(r.items()))
            for r in schema.table("agg_job_month").rows()
        )
        # full rebuild over the same facts
        reference = Database().create_schema("modw")
        ingest_jobs(reference, self._jobs(1, 20) + self._jobs(100, 15, base_day=20))
        Aggregator(reference).aggregate_jobs("month")
        full_rows = sorted(
            tuple(sorted(r.items()))
            for r in reference.table("agg_job_month").rows()
        )
        assert len(incremental_rows) == len(full_rows)
        for inc, full in zip(incremental_rows, full_rows):
            for (k1, v1), (k2, v2) in zip(inc, full):
                assert k1 == k2
                if isinstance(v1, float):
                    assert v1 == pytest.approx(v2)
                else:
                    assert v1 == v2

    def test_incremental_is_idempotent(self):
        schema = Database().create_schema("modw")
        aggregator = Aggregator(schema)
        ingest_jobs(schema, self._jobs(1, 10))
        aggregator.aggregate_jobs_incremental("month")
        total = sum(r["cpu_hours"] for r in schema.table("agg_job_month").rows())
        assert aggregator.aggregate_jobs_incremental("month") == 0
        assert sum(
            r["cpu_hours"] for r in schema.table("agg_job_month").rows()
        ) == pytest.approx(total)

    def test_full_rebuild_resyncs_incremental_bookkeeping(self):
        schema = Database().create_schema("modw")
        aggregator = Aggregator(schema)
        ingest_jobs(schema, self._jobs(1, 10))
        aggregator.aggregate_jobs_incremental("month")
        aggregator.aggregate_jobs("month")  # full rebuild
        # nothing new -> incremental must not double count
        assert aggregator.aggregate_jobs_incremental("month") == 0
        raw = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
        agg = sum(r["cpu_hours"] for r in schema.table("agg_job_month").rows())
        assert agg == pytest.approx(raw)

    def test_incremental_spanning_period_boundary(self):
        from repro.etl import ParsedJob

        schema = Database().create_schema("modw")
        aggregator = Aggregator(schema)
        job = ParsedJob(
            job_id=1, user="u", pi="p", queue="q", application="a",
            submit_ts=ts(2017, 1, 31, 20), start_ts=ts(2017, 1, 31, 22),
            end_ts=ts(2017, 2, 1, 2), nodes=1, cores=10,
            req_walltime_s=14400, state="COMPLETED", exit_code=0,
            resource="r1",
        )
        ingest_jobs(schema, [job])
        aggregator.aggregate_jobs_incremental("month")
        rows = {r["period_label"]: r for r in schema.table("agg_job_month").rows()}
        assert rows["2017-01"]["cpu_hours"] == pytest.approx(20.0)
        assert rows["2017-02"]["cpu_hours"] == pytest.approx(20.0)

    def test_incremental_on_empty_schema(self):
        schema = Database().create_schema("modw")
        assert Aggregator(schema).aggregate_jobs_incremental("month") == 0
