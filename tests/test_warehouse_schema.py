"""Catalog types: columns, tables, normalization, constraints."""

from __future__ import annotations

import pytest

from repro.warehouse import (
    Column,
    ColumnType,
    SchemaError,
    TableSchema,
    TypeMismatchError,
    make_columns,
)

C = ColumnType


def simple_schema(**kwargs) -> TableSchema:
    return TableSchema(
        "t",
        make_columns([
            ("id", C.INT, False),
            ("name", C.STR),
            ("score", C.FLOAT),
        ]),
        **kwargs,
    )


class TestColumnTypes:
    def test_int_accepts_int_and_integral_float(self):
        assert C.INT.validate(5) == 5
        assert C.INT.validate(5.0) == 5

    def test_int_rejects_bool_and_fraction(self):
        with pytest.raises(TypeMismatchError):
            C.INT.validate(True)
        with pytest.raises(TypeMismatchError):
            C.INT.validate(5.5)
        with pytest.raises(TypeMismatchError):
            C.INT.validate("5")

    def test_float_coerces_int(self):
        value = C.FLOAT.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            C.FLOAT.validate(False)

    def test_str_strict(self):
        assert C.STR.validate("x") == "x"
        with pytest.raises(TypeMismatchError):
            C.STR.validate(5)

    def test_bool_strict(self):
        assert C.BOOL.validate(True) is True
        with pytest.raises(TypeMismatchError):
            C.BOOL.validate(1)

    def test_timestamp_like_int(self):
        assert C.TIMESTAMP.validate(1483228800) == 1483228800

    def test_json_accepts_serializable(self):
        assert C.JSON.validate({"a": [1, 2]}) == {"a": [1, 2]}

    def test_json_rejects_unserializable(self):
        with pytest.raises(TypeMismatchError):
            C.JSON.validate({"a": object()})

    def test_none_passes_type_validation(self):
        assert C.INT.validate(None) is None


class TestColumn:
    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", C.INT)
        with pytest.raises(SchemaError):
            Column("", C.INT)

    def test_default_validated(self):
        with pytest.raises(TypeMismatchError):
            Column("x", C.INT, default="nope")
        assert Column("x", C.INT, default=3.0).default == 3


class TestTableSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", make_columns([("a", C.INT), ("a", C.STR)]))

    def test_pk_must_reference_existing_column(self):
        with pytest.raises(SchemaError):
            simple_schema(primary_key=("missing",))

    def test_index_must_reference_existing_column(self):
        with pytest.raises(SchemaError):
            simple_schema(indexes=("missing",))

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_position_and_column_lookup(self):
        schema = simple_schema()
        assert schema.position("name") == 1
        assert schema.column("score").ctype is C.FLOAT
        with pytest.raises(SchemaError):
            schema.position("nope")

    def test_normalize_row_applies_defaults_and_order(self):
        schema = TableSchema(
            "t",
            (
                Column("id", C.INT, nullable=False),
                Column("kind", C.STR, default="generic"),
            ),
            primary_key=("id",),
        )
        assert schema.normalize_row({"id": 1}) == (1, "generic")

    def test_normalize_row_rejects_unknown_columns(self):
        with pytest.raises(SchemaError):
            simple_schema().normalize_row({"id": 1, "bogus": 2})

    def test_normalize_row_enforces_not_null(self):
        schema = simple_schema()
        with pytest.raises(TypeMismatchError):
            schema.normalize_row({"name": "x"})  # id is non-nullable

    def test_pk_column_implicitly_not_null(self):
        schema = TableSchema(
            "t", make_columns([("id", C.INT)]), primary_key=("id",)
        )
        with pytest.raises(TypeMismatchError):
            schema.normalize_row({})

    def test_key_of(self):
        schema = simple_schema(primary_key=("id",))
        row = schema.normalize_row({"id": 9, "name": "n", "score": 1.0})
        assert schema.key_of(row) == (9,)
        keyless = simple_schema()
        assert keyless.key_of(row) is None

    def test_composite_key(self):
        schema = simple_schema(primary_key=("id", "name"))
        row = schema.normalize_row({"id": 1, "name": "a", "score": None})
        assert schema.key_of(row) == (1, "a")

    def test_dict_round_trip(self):
        schema = simple_schema(primary_key=("id",), indexes=("name",))
        clone = TableSchema.from_dict(schema.to_dict())
        assert clone == schema
