"""Loose federation: dump shipping, staleness, handover to tight."""

from __future__ import annotations

import pytest

from repro.core import LooseChannel, ReplicationFilter
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database


def make_job(job_id, resource="r1"):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 1, 1), start_ts=ts(2017, 1, 1, 1),
        end_ts=ts(2017, 1, 1, 3), nodes=1, cores=2, req_walltime_s=7200,
        state="COMPLETED", exit_code=0, resource=resource,
    )


@pytest.fixture()
def satellite_schema():
    schema = Database("sat").create_schema("modw")
    ingest_jobs(schema, [make_job(i) for i in range(8)])
    return schema


class TestLooseChannel:
    def test_ship_copies_data(self, satellite_schema):
        hub_db = Database("hub")
        channel = LooseChannel(satellite_schema, hub_db, "fed_sat")
        shipped = channel.ship()
        assert shipped.name == "fed_sat"
        assert shipped.table("fact_job").checksum() == (
            satellite_schema.table("fact_job").checksum()
        )
        assert channel.shipments == 1

    def test_staleness_tracks_new_commits(self, satellite_schema):
        hub_db = Database("hub")
        channel = LooseChannel(satellite_schema, hub_db, "fed_sat")
        assert channel.staleness > 0  # never shipped yet
        channel.ship()
        assert channel.staleness == 0
        ingest_jobs(satellite_schema, [make_job(100)])
        assert channel.staleness == 1

    def test_reship_replaces_previous_dump(self, satellite_schema):
        hub_db = Database("hub")
        channel = LooseChannel(satellite_schema, hub_db, "fed_sat")
        channel.ship()
        ingest_jobs(satellite_schema, [make_job(100)])
        channel.ship()
        assert len(hub_db.schema("fed_sat").table("fact_job")) == 9

    def test_filter_applies_to_dump(self, satellite_schema):
        ingest_jobs(satellite_schema, [make_job(50, resource="secret")])
        hub_db = Database("hub")
        channel = LooseChannel(
            satellite_schema, hub_db, "fed_sat",
            filter=ReplicationFilter(exclude_resources={"secret"}),
        )
        shipped = channel.ship()
        assert {r["name"] for r in shipped.table("dim_resource").rows()} == {"r1"}
        assert len(shipped.table("fact_job")) == 8
        # bookkeeping tables never ship
        assert not shipped.has_table("etl_markers")

    def test_ship_via_file(self, satellite_schema, tmp_path):
        hub_db = Database("hub")
        channel = LooseChannel(satellite_schema, hub_db, "fed_sat")
        shipped = channel.ship_via_file(tmp_path / "sat.dump.gz")
        assert (tmp_path / "sat.dump.gz").exists()
        assert shipped.table("fact_job").checksum() == (
            satellite_schema.table("fact_job").checksum()
        )

    def test_to_tight_resumes_without_gap_or_overlap(self, satellite_schema):
        """The heterogeneous model: start loose, upgrade to tight."""
        hub_db = Database("hub")
        loose = LooseChannel(satellite_schema, hub_db, "fed_sat")
        loose.ship()
        ingest_jobs(satellite_schema, [make_job(100), make_job(101)])
        tight = loose.to_tight()
        applied = tight.catch_up()
        assert applied == 2  # exactly the two new fact rows
        hub_fact = hub_db.schema("fed_sat").table("fact_job")
        assert len(hub_fact) == 10
        assert hub_fact.checksum() == satellite_schema.table("fact_job").checksum()

    def test_to_tight_before_ship_rejected(self, satellite_schema):
        channel = LooseChannel(satellite_schema, Database("hub"), "fed_sat")
        with pytest.raises(RuntimeError):
            channel.to_tight()
