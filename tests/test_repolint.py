"""repolint: rule fixtures (known-bad fires / known-good silent),
suppressions, baseline workflow, CLI exit codes, and the clean-tree gate.

Each rule's known-bad fixture reproduces the bug shape that motivated it;
the nullable-truthiness fixtures include the exact PR-2 ``soft_quota_gb``
bug (a real 0.0 quota treated as NULL).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import textwrap

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    SchemaCatalog,
    Violation,
    build_default_catalog,
    load_baseline,
    parse_suppressions,
    partition,
    save_baseline,
)
from repro.analysis.runner import add_lint_arguments, run_lint
from repro.warehouse.schema import ColumnType, TableSchema, make_columns

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CORE = "src/repro/core/fake.py"
ETL = "src/repro/etl/fake.py"
NEUTRAL = "src/repro/simulators/fake.py"


@pytest.fixture(scope="module")
def engine():
    return LintEngine()


def lint(engine, source, path=NEUTRAL):
    return engine.lint_source(textwrap.dedent(source), path)


def fired(engine, source, path=NEUTRAL):
    return sorted({v.rule_id for v in lint(engine, source, path)})


# -- R1: nullable-truthiness --------------------------------------------------


class TestNullableTruthiness:
    def test_exact_pr2_soft_quota_bug_shape(self, engine):
        # The literal PR-2 bug: `if snap["soft_quota_gb"]` treats a stored
        # 0.0 quota (a real value) the same as NULL (unconfigured).
        violations = lint(
            engine,
            """
            def fold(snap):
                if snap["soft_quota_gb"]:
                    return snap["logical_usage_gb"] / snap["soft_quota_gb"]
                return 0.0
            """,
        )
        assert [v.rule_id for v in violations] == ["nullable-truthiness"]
        assert "soft_quota_gb" in violations[0].message
        assert "fact_storage" in violations[0].message

    def test_fixed_shape_is_silent(self, engine):
        assert fired(
            engine,
            """
            def fold(snap):
                soft = snap["soft_quota_gb"]
                if soft is not None and soft > 0:
                    return snap["logical_usage_gb"] / soft
                return 0.0
            """,
        ) == []

    def test_get_call(self, engine):
        assert fired(engine, "x = 1 if row.get('hard_quota_gb') else 2") == [
            "nullable-truthiness"
        ]

    def test_get_with_truthy_default_is_silent(self, engine):
        # a truthy default deliberately changes the truthiness semantics
        assert fired(engine, "x = 1 if row.get('hard_quota_gb', 1.0) else 2") == []

    def test_or_fallback_operand(self, engine):
        # the pre-fix aggregation shape: `snap["hard_quota_gb"] or 0.0`
        assert fired(
            engine, 'total += snap["hard_quota_gb"] or 0.0'
        ) == ["nullable-truthiness"]

    def test_while_not_and_comprehension_contexts(self, engine):
        source = """
        while row["soft_quota_gb"]:
            pass
        if not row["hard_quota_gb"]:
            pass
        xs = [r for r in rows if r["soft_quota_gb"]]
        assert row["hard_quota_gb"]
        """
        violations = lint(engine, source)
        assert [v.rule_id for v in violations] == ["nullable-truthiness"] * 4

    def test_non_nullable_numeric_is_silent(self, engine):
        # fact_job.cpu_hours is non-nullable: truthiness is legitimate
        # (zero really means "no usage"), so the schema-aware rule stays
        # silent where a syntactic rule would cry wolf.
        assert fired(engine, 'w = job["cpu_hours"] or 0.0') == []

    def test_unknown_column_is_silent(self, engine):
        assert fired(engine, 'if row["no_such_column_anywhere"]: pass') == []

    def test_comparison_is_silent(self, engine):
        assert fired(engine, 'if row["soft_quota_gb"] is not None: pass') == []
        assert fired(engine, 'if row["soft_quota_gb"] > 0: pass') == []


# -- R2: mutation-without-version-bump ---------------------------------------


class TestMutationWithoutVersionBump:
    def test_direct_rows_append_fires(self, engine):
        violations = lint(engine, "table._rows.append(row)", path=ETL)
        assert [v.rule_id for v in violations] == ["mutation-without-version-bump"]
        assert "data_version" in violations[0].message

    def test_all_private_state_names(self, engine):
        source = """
        t._pk_index[key] = 3
        t._indexes.clear()
        t._live_count = 0
        t._columnar_cache.clear()
        t._data_version += 1
        """
        violations = lint(engine, source, path=ETL)
        assert len(violations) == 5
        assert {v.rule_id for v in violations} == {"mutation-without-version-bump"}

    def test_warehouse_engine_itself_exempt(self, engine):
        assert fired(
            engine, "table._rows.append(row)",
            path="src/repro/warehouse/engine.py",
        ) == []

    def test_self_attribute_in_foreign_class_silent(self, engine):
        # another class's own `self._rows` is not Table state
        assert fired(
            engine,
            """
            class Buffer:
                def __init__(self):
                    self._rows = []
                def add(self, row):
                    self._rows.append(row)
            """,
            path=ETL,
        ) == []

    def test_public_api_is_silent(self, engine):
        assert fired(engine, "table.insert({'a': 1})", path=NEUTRAL) == []


# -- R3: nondeterminism-in-replication ---------------------------------------


class TestNondeterminism:
    def test_time_time_in_core_fires(self, engine):
        violations = lint(
            engine, "import time\nnow = time.time()", path=CORE
        )
        assert [v.rule_id for v in violations] == ["nondeterminism-in-replication"]

    def test_datetime_now_both_import_forms(self, engine):
        assert fired(
            engine, "import datetime\nd = datetime.datetime.now()", path=CORE
        ) == ["nondeterminism-in-replication"]
        assert fired(
            engine, "from datetime import datetime\nd = datetime.now()", path=CORE
        ) == ["nondeterminism-in-replication"]

    def test_unseeded_random_fires_seeded_silent(self, engine):
        assert fired(
            engine, "import random\nj = random.random()", path=CORE
        ) == ["nondeterminism-in-replication"]
        assert fired(
            engine, "import random\nrng = random.Random()", path=CORE
        ) == ["nondeterminism-in-replication"]
        # the resilience.py idiom: explicitly seeded per attempt
        assert fired(
            engine,
            "import random\nrng = random.Random(f'{seed}:{attempt}')",
            path=CORE,
        ) == []

    def test_numpy_global_state_fires_default_rng_seeded_silent(self, engine):
        assert fired(
            engine, "import numpy as np\nx = np.random.rand(3)", path=CORE
        ) == ["nondeterminism-in-replication"]
        assert fired(
            engine, "import numpy as np\nrng = np.random.default_rng()", path=CORE
        ) == ["nondeterminism-in-replication"]
        assert fired(
            engine, "import numpy as np\nrng = np.random.default_rng(42)", path=CORE
        ) == []

    def test_outside_core_is_silent(self, engine):
        assert fired(engine, "import time\nnow = time.time()", path=NEUTRAL) == []

    def test_auth_exempt_via_config(self, engine):
        # session expiry legitimately reads the clock
        assert fired(
            engine, "import time\nnow = time.time()",
            path="src/repro/auth/fake.py",
        ) == []

    def test_exemption_is_config_driven(self):
        strict = LintEngine(
            catalog=SchemaCatalog(),
            config=LintConfig(
                determinism_paths=("repro/",), determinism_exempt_paths=()
            ),
        )
        assert [
            v.rule_id
            for v in strict.lint_source(
                "import time\nnow = time.time()", "src/repro/auth/fake.py"
            )
        ] == ["nondeterminism-in-replication"]


# -- R4: unknown-column-literal ----------------------------------------------


class TestUnknownColumn:
    def test_row_subscript_unknown_column_fires(self, engine):
        violations = lint(
            engine,
            """
            def scan(schema):
                for snap in schema.table("fact_storage").rows():
                    print(snap["soft_quota"])
            """,
            path=ETL,
        )
        assert [v.rule_id for v in violations] == ["unknown-column-literal"]
        assert "'soft_quota'" in violations[0].message

    def test_known_column_silent(self, engine):
        assert fired(
            engine,
            """
            def scan(schema):
                for snap in schema.table("fact_storage").rows():
                    print(snap["soft_quota_gb"])
            """,
            path=ETL,
        ) == []

    def test_insert_dict_keys_checked(self, engine):
        assert fired(
            engine,
            """
            def load(schema):
                t = schema.table("fact_storage")
                t.insert({"ts": 0, "filesystm": "/home"})
            """,
            path=ETL,
        ) == ["unknown-column-literal"]

    def test_column_array_and_list_methods(self, engine):
        violations = lint(
            engine,
            """
            def cols(schema):
                t = schema.table("fact_storage")
                a = t.column_array("logical_usage_gb")
                b = t.column_array("logical_gb")
                c = t.columns_values(["ts", "file_cnt"])
            """,
            path=ETL,
        )
        assert [v.rule_id for v in violations] == ["unknown-column-literal"] * 2

    def test_fstring_table_name_resolves_by_glob(self, engine):
        # f"agg_storage_{period}" -> agg_storage_* -> all four periods
        assert fired(
            engine,
            """
            def agg(schema, period):
                t = schema.table(f"agg_storage_{period}")
                for row in t.rows():
                    print(row["sum_logical_gbs"])
            """,
            path=ETL,
        ) == ["unknown-column-literal"]

    def test_unknown_table_is_silent(self, engine):
        # pattern matches no catalog table: don't guess
        assert fired(
            engine,
            """
            def scan(schema):
                for row in schema.table("some_plugin_table").rows():
                    print(row["whatever"])
            """,
            path=ETL,
        ) == []

    def test_rebound_row_variable_unions_tables(self, engine):
        # the DimensionCache._prime shape: one `row` name across
        # sequential loops over different tables must not cross-flag
        assert fired(
            engine,
            """
            def prime(s):
                for row in s.table("dim_resource").rows():
                    print(row["resource_id"])
                for row in s.table("dim_person").rows():
                    print(row["person_id"])
            """,
            path=ETL,
        ) == []

    def test_outside_configured_paths_silent(self, engine):
        assert fired(
            engine,
            """
            def scan(schema):
                for snap in schema.table("fact_storage").rows():
                    print(snap["soft_quota"])
            """,
            path="src/repro/core/fake.py",
        ) == []


# -- R5: overbroad-except -----------------------------------------------------


class TestOverbroadExcept:
    def test_except_exception_in_core_loop_fires(self, engine):
        violations = lint(
            engine,
            """
            def pump(events):
                for event in events:
                    try:
                        apply(event)
                    except Exception:
                        pass
            """,
            path=CORE,
        )
        assert [v.rule_id for v in violations] == ["overbroad-except"]

    def test_narrow_except_in_loop_silent(self, engine):
        assert fired(
            engine,
            """
            def pump(events):
                for event in events:
                    try:
                        apply(event)
                    except (ValueError, KeyError):
                        pass
            """,
            path=CORE,
        ) == []

    def test_except_exception_outside_loop_silent(self, engine):
        assert fired(
            engine,
            """
            def once():
                try:
                    apply()
                except Exception:
                    pass
            """,
            path=CORE,
        ) == []

    def test_bare_except_fires_anywhere(self, engine):
        violations = lint(
            engine,
            """
            try:
                go()
            except:
                pass
            """,
            path=NEUTRAL,
        )
        assert [v.rule_id for v in violations] == ["overbroad-except"]
        assert "KeyboardInterrupt" in violations[0].message

    def test_base_exception_fires_anywhere(self, engine):
        assert fired(
            engine,
            """
            try:
                go()
            except BaseException:
                pass
            """,
            path=NEUTRAL,
        ) == ["overbroad-except"]

    def test_non_core_loop_silent(self, engine):
        assert fired(
            engine,
            """
            def pump(events):
                for event in events:
                    try:
                        apply(event)
                    except Exception:
                        pass
            """,
            path=NEUTRAL,
        ) == []


# -- R6: unregistered-metric-name ---------------------------------------------


class TestMetricName:
    def test_bad_suffix_fires(self, engine):
        violations = lint(
            engine,
            """
            def wire(registry):
                registry.counter("replication_events", "Events", ("channel",))
            """,
        )
        assert [v.rule_id for v in violations] == ["unregistered-metric-name"]
        assert "replication_events" in violations[0].message

    def test_camel_case_fires(self, engine):
        assert fired(
            engine,
            """
            def wire(registry):
                registry.gauge("replicationLag_rows")
            """,
        ) == ["unregistered-metric-name"]

    def test_conforming_names_are_silent(self, engine):
        assert fired(
            engine,
            """
            def wire(registry):
                registry.counter("replication_events_applied_total")
                registry.gauge("replication_lag_rows")
                registry.histogram("replication_pump_seconds")
                registry.counter("dump_size_bytes")
            """,
        ) == []

    def test_fires_in_any_path(self, engine):
        # unlike the path-scoped rules, naming applies repo-wide
        assert fired(
            engine,
            """
            def wire(registry):
                registry.histogram("pump-latency")
            """,
            path=CORE,
        ) == ["unregistered-metric-name"]

    def test_non_registry_receivers_with_other_methods_silent(self, engine):
        assert fired(
            engine,
            """
            def stats(collections, values):
                return collections.Counter(values)
            """,
        ) == []

    def test_dynamic_names_are_not_checked(self, engine):
        # only literals are checkable statically; dynamic names are
        # validated at registration time by MetricsRegistry itself
        assert fired(
            engine,
            """
            def wire(registry, name):
                registry.counter(name)
            """,
        ) == []

    def test_pattern_matches_runtime_registry_pattern(self):
        from repro.analysis.rules import MetricNameRule
        from repro.obs.metrics import METRIC_NAME_PATTERN

        assert MetricNameRule.NAME_RE.pattern == METRIC_NAME_PATTERN


# -- R7: unknown-alert-rule-id ------------------------------------------------


class TestAlertRuleId:
    def test_unknown_literal_in_alert_rule_fires(self, engine):
        violations = lint(
            engine,
            """
            def runbook_link(obs):
                return obs.alert_rule("lag_is_hot")
            """,
        )
        assert [v.rule_id for v in violations] == ["unknown-alert-rule-id"]
        assert "lag_is_hot" in violations[0].message

    def test_state_of_first_argument_checked(self, engine):
        assert fired(
            engine,
            """
            def check(monitor, member):
                return monitor.alerts.state_of("bogus_rule", member)
            """,
        ) == ["unknown-alert-rule-id"]

    def test_catalog_ids_are_silent(self, engine):
        assert fired(
            engine,
            """
            def check(monitor, member):
                monitor.alerts.state_of("sync_failure_burn_rate", member)
                monitor.alerts.state_of("member_stale", member)
                return alert_rule("replication_lag_high")
            """,
        ) == []

    def test_bare_lookup_call_checked_too(self, engine):
        assert fired(
            engine,
            """
            def check():
                return alert_rule("whatever_rule")
            """,
        ) == ["unknown-alert-rule-id"]

    def test_dynamic_ids_are_not_checked(self, engine):
        # only literals are statically checkable; dynamic ids raise
        # KeyError at lookup time from alert_rule() itself
        assert fired(
            engine,
            """
            def check(monitor, rule_id, member):
                return monitor.alerts.state_of(rule_id, member)
            """,
        ) == []

    def test_other_receivers_with_other_methods_silent(self, engine):
        assert fired(
            engine,
            """
            def check(d):
                return d.get("anything_at_all")
            """,
        ) == []

    def test_rule_ids_match_shipped_catalog(self):
        from repro.analysis.rules import AlertRuleIdRule
        from repro.obs.alerts import DEFAULT_ALERT_RULES

        assert AlertRuleIdRule.RULE_IDS == frozenset(
            r.id for r in DEFAULT_ALERT_RULES
        )


# -- suppressions -------------------------------------------------------------


class TestSuppressions:
    SOURCE = """
    def pump(events):
        for event in events:
            try:
                apply(event)
            except Exception:  # repolint: ignore[overbroad-except] -- quarantine boundary
                pass
    """

    def test_inline_suppression(self, engine):
        assert fired(engine, self.SOURCE, path=CORE) == []

    def test_standalone_comment_targets_next_line(self, engine):
        source = """
        def pump(events):
            for event in events:
                try:
                    apply(event)
                # repolint: ignore[overbroad-except] -- quarantine boundary
                except Exception:
                    pass
        """
        assert fired(engine, source, path=CORE) == []

    def test_wildcard_suppresses_every_rule(self, engine):
        assert fired(
            engine,
            'if row["soft_quota_gb"]: pass  # repolint: ignore[*] -- demo',
        ) == []

    def test_wrong_rule_id_does_not_suppress(self, engine):
        assert fired(
            engine,
            'if row["soft_quota_gb"]: pass  '
            "# repolint: ignore[overbroad-except] -- wrong id",
        ) == ["nullable-truthiness"]

    def test_parse_suppressions_index(self):
        index = parse_suppressions(
            "x = 1\n"
            "# repolint: ignore[rule-a, rule-b] -- next line\n"
            "y = f()\n"
            "z = g()  # repolint: ignore[*]\n"
        )
        assert index.suppresses(3, "rule-a")
        assert index.suppresses(3, "rule-b")
        assert not index.suppresses(3, "rule-c")
        assert not index.suppresses(2, "rule-a")
        assert index.suppresses(4, "anything")


# -- baseline workflow --------------------------------------------------------


def _violation(snippet, rule="nullable-truthiness", path="src/x.py", line=1):
    return Violation(
        rule_id=rule, path=path, line=line, col=0,
        message="m", snippet=snippet,
    )


class TestBaseline:
    def test_fingerprint_ignores_line_numbers_and_whitespace(self):
        a = _violation('if row["q"]:', line=10)
        b = _violation('  if  row["q"]:  ', line=99)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != _violation('if row["z"]:').fingerprint

    def test_roundtrip_and_partition(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        legacy = [_violation('if row["q"]:'), _violation('if row["r"]:')]
        save_baseline(path, legacy)
        baseline = load_baseline(path)
        assert len(baseline) == 2

        # same findings at shifted lines: all baselined, nothing new
        shifted = [
            _violation('if row["q"]:', line=50),
            _violation('if row["r"]:', line=51),
        ]
        new, known = partition(shifted, baseline)
        assert new == [] and len(known) == 2

        # a fresh finding still fails
        fresh = _violation('if row["brand_new"]:')
        new, known = partition(shifted + [fresh], baseline)
        assert new == [fresh] and len(known) == 2

    def test_count_based_matching(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, [_violation("dup()"), _violation("dup()")])
        baseline = load_baseline(path)
        three = [_violation("dup()", line=i) for i in (1, 2, 3)]
        new, known = partition(three, baseline)
        assert len(known) == 2 and len(new) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))


# -- catalog ------------------------------------------------------------------


class TestCatalog:
    def test_default_catalog_is_schema_aware(self):
        catalog = build_default_catalog()
        assert "fact_storage" in catalog
        assert catalog.is_nullable_numeric("soft_quota_gb")
        assert "fact_storage" in catalog.nullable_numeric_tables("soft_quota_gb")
        # fact_job measures are non-nullable by design
        assert not catalog.is_nullable_numeric("cpu_hours")
        # period-parameterized aggregates registered for every period
        names = catalog.table_names()
        for period in ("day", "month", "quarter", "year"):
            assert f"agg_job_{period}" in names

    def test_glob_resolution(self):
        catalog = build_default_catalog()
        resolved = {s.name for s in catalog.resolve("agg_storage_*")}
        assert resolved == {
            "agg_storage_day", "agg_storage_month",
            "agg_storage_quarter", "agg_storage_year",
        }
        assert catalog.has_column("agg_storage_*", "avg_logical_gb") is True
        assert catalog.has_column("agg_storage_*", "bogus") is False
        assert catalog.has_column("no_such_*", "x") is None

    def test_primary_key_columns_not_nullable_numeric(self):
        schema = TableSchema(
            name="t",
            columns=make_columns([("id", ColumnType.INT, True)]),
            primary_key=("id",),
        )
        catalog = SchemaCatalog([schema])
        assert not catalog.is_nullable_numeric("id")


# -- CLI runner ---------------------------------------------------------------


def _parse(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


class TestCli:
    def test_list_rules(self):
        out = io.StringIO()
        assert run_lint(_parse(["--list-rules"]), out=out) == 0
        text = out.getvalue()
        for rule_id in (
            "nullable-truthiness", "mutation-without-version-bump",
            "nondeterminism-in-replication", "unknown-column-literal",
            "overbroad-except", "unregistered-metric-name",
            "unguarded-shared-mutation", "blocking-call-under-lock",
            "lock-order-inversion",
        ):
            assert rule_id in text
        # project-wide rules are marked as such in the listing
        assert any(
            "lock-order-inversion" in line and "[project-wide]" in line
            for line in text.splitlines()
        )

    def test_unknown_rule_id_is_usage_error(self):
        assert run_lint(_parse(["--rule", "no-such-rule", "src"])) == 2

    def test_new_violation_fails_then_baseline_accepts(self, tmp_path):
        bad = tmp_path / "repro" / "etl" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('def f(row):\n    return row["soft_quota_gb"] or 0.0\n')
        baseline = str(tmp_path / "baseline.json")

        out = io.StringIO()
        args = _parse([str(bad), "--baseline", baseline])
        assert run_lint(args, out=out) == 1
        assert "nullable-truthiness" in out.getvalue()

        args = _parse([str(bad), "--baseline", baseline, "--write-baseline"])
        assert run_lint(args, out=io.StringIO()) == 0

        args = _parse([str(bad), "--baseline", baseline])
        assert run_lint(args, out=io.StringIO()) == 0

        # --no-baseline reports it again
        args = _parse([str(bad), "--baseline", baseline, "--no-baseline"])
        assert run_lint(args, out=io.StringIO()) == 1

    def test_json_format(self, tmp_path):
        bad = tmp_path / "repro" / "etl" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('x = 1 if row.get("hard_quota_gb") else 2\n')
        out = io.StringIO()
        args = _parse([str(bad), "--no-baseline", "--format", "json"])
        assert run_lint(args, out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["new"][0]["rule"] == "nullable-truthiness"
        assert payload["baselined"] == []

    def test_syntax_error_reported(self, engine):
        violations = engine.lint_source("def broken(:\n", "src/x.py")
        assert [v.rule_id for v in violations] == ["syntax-error"]

    def test_cli_subcommand_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "--list-rules"])
        assert args.func(args) == 0

    def test_concurrency_rule_selectable_by_id(self, tmp_path):
        bad = tmp_path / "repro" / "ui" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent(
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _n
                    self._n = 0
                def bump(self):
                    self._n += 1
            """
        ))
        out = io.StringIO()
        args = _parse([
            str(bad), "--no-baseline", "--rule", "unguarded-shared-mutation",
        ])
        assert run_lint(args, out=out) == 1
        assert "unguarded-shared-mutation" in out.getvalue()

    def test_clean_run_summary_distinguishes_baselined(self, tmp_path):
        bad = tmp_path / "repro" / "etl" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('def f(row):\n    return row["soft_quota_gb"] or 0.0\n')
        clean = tmp_path / "repro" / "etl" / "clean.py"
        clean.write_text("x = 1\n")
        baseline = str(tmp_path / "baseline.json")

        # genuinely clean file: explicit "clean" wording
        out = io.StringIO()
        args = _parse([str(clean), "--baseline", baseline])
        assert run_lint(args, out=out) == 0
        assert "clean (no findings)" in out.getvalue()

        # baselined finding: exits 0 but is NOT reported as clean
        args = _parse([str(bad), "--baseline", baseline, "--write-baseline"])
        assert run_lint(args, out=io.StringIO()) == 0
        out = io.StringIO()
        args = _parse([str(bad), "--baseline", baseline])
        assert run_lint(args, out=out) == 0
        text = out.getvalue()
        assert "clean" not in text
        assert "0 new violation(s), 1 baselined" in text

    def test_internal_error_exits_2(self, tmp_path, monkeypatch):
        target = tmp_path / "repro" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")

        from repro.analysis.engine import LintEngine

        def boom(self, paths, jobs=1):
            raise RuntimeError("injected engine crash")

        monkeypatch.setattr(LintEngine, "lint_paths", boom)
        assert run_lint(_parse([str(target)]), out=io.StringIO()) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        missing = str(tmp_path / "nope" / "missing.py")
        args = _parse([missing, "--no-baseline"])
        # os.walk silently yields nothing for missing dirs; a missing
        # *file* path surfaces as OSError -> exit 2
        out = io.StringIO()
        code = run_lint(args, out=out)
        assert code in (0, 2)


class TestParallelJobs:
    def test_jobs_output_identical_to_sequential(self, tmp_path):
        # several files with known findings: parallel run must produce
        # byte-identical output (same findings, same order)
        pkg = tmp_path / "repro" / "etl"
        pkg.mkdir(parents=True)
        for i in range(6):
            (pkg / f"mod{i}.py").write_text(
                f'def f{i}(row):\n    return row["soft_quota_gb"] or {i}.0\n'
            )
        argv = [str(tmp_path / "repro"), "--no-baseline"]

        seq_out, par_out = io.StringIO(), io.StringIO()
        assert run_lint(_parse(argv), out=seq_out) == 1
        assert run_lint(_parse(argv + ["--jobs", "3"]), out=par_out) == 1
        assert seq_out.getvalue() == par_out.getvalue()
        assert "nullable-truthiness" in seq_out.getvalue()

    def test_jobs_runs_project_rules(self, tmp_path):
        pkg = tmp_path / "repro" / "ui"
        pkg.mkdir(parents=True)
        (pkg / "alpha.py").write_text(textwrap.dedent(
            """
            import threading
            class Alpha:
                def __init__(self):
                    self._alock = threading.Lock()
                def ab(self, b: Beta):
                    with self._alock:
                        with b._block:
                            pass
            """
        ))
        (pkg / "beta.py").write_text(textwrap.dedent(
            """
            import threading
            class Beta:
                def __init__(self):
                    self._block = threading.Lock()
                def ba(self, a: Alpha):
                    with self._block:
                        with a._alock:
                            pass
            """
        ))
        out = io.StringIO()
        argv = [str(tmp_path / "repro"), "--no-baseline", "--jobs", "2"]
        assert run_lint(_parse(argv), out=out) == 1
        assert "lock-order-inversion" in out.getvalue()

    def test_jobs_zero_means_cpu_count(self, tmp_path):
        target = tmp_path / "repro" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        out = io.StringIO()
        assert run_lint(
            _parse([str(target), "--no-baseline", "--jobs", "0"]), out=out
        ) == 0


class TestRuleCatalogParity:
    def test_every_rule_documented_in_static_analysis_md(self):
        from repro.analysis import ALL_FILE_RULES
        from repro.analysis.concurrency import ALL_PROJECT_RULES

        doc = open(
            os.path.join(REPO_ROOT, "docs", "static-analysis.md"),
            encoding="utf-8",
        ).read()
        for rule in (*ALL_FILE_RULES, *ALL_PROJECT_RULES):
            assert rule.id in doc, (
                f"rule {rule.id!r} missing from docs/static-analysis.md"
            )

    def test_file_rule_registry_includes_concurrency_rules(self):
        from repro.analysis import ALL_FILE_RULES, ALL_RULES

        ids = [rule.id for rule in ALL_FILE_RULES]
        assert set(r.id for r in ALL_RULES) < set(ids)
        assert "unguarded-shared-mutation" in ids
        assert "blocking-call-under-lock" in ids


# -- the gate: current tree is clean ------------------------------------------


class TestCleanTree:
    def test_src_repro_is_clean_against_committed_baseline(self, engine):
        src = os.path.join(REPO_ROOT, "src", "repro")
        findings = engine.lint_paths([src])
        baseline = load_baseline(
            os.path.join(REPO_ROOT, ".repolint-baseline.json")
        )
        new, _known = partition(findings, baseline)
        assert new == [], "\n".join(v.format() for v in new)
