"""Coverage for smaller public API surfaces not exercised elsewhere."""

from __future__ import annotations

import json

import pytest

from repro.auth import Account, AccountStore, AuthError, IdentityProvider, ServiceProvider
from repro.core import (
    IdentityMap,
    RoutingPolicy,
    federation_resource_names,
    qualified_identity,
)
from repro.realms import jobs_realm
from repro.timeutil import from_ts, ts
from repro.ui import UsageExplorer, chart_to_json, ChartBuilder
from repro.warehouse import P, Query
from tests.conftest import T0

END = ts(2017, 6, 1)


class TestAccountStoreSurface:
    def test_has_usernames_ensure(self):
        store = AccountStore("inst")
        assert not store.has("alice")
        store.add(Account("alice"))
        assert store.has("alice")
        assert store.usernames() == ["alice"]
        same = store.ensure("alice")
        assert same is store.get("alice")
        created = store.ensure("bob", full_name="Bob")
        assert created.full_name == "Bob"
        assert store.usernames() == ["alice", "bob"]

    def test_get_unknown_raises(self):
        with pytest.raises(AuthError):
            AccountStore("inst").get("ghost")


class TestSamlSurface:
    def test_knows_and_trust_key(self):
        idp = IdentityProvider("idp.a")
        idp.register("alice")
        assert idp.knows("alice") and not idp.knows("bob")
        sp = ServiceProvider("app")
        sp.trust_key("idp.a", idp.key)
        assert sp.trusted_issuers == ["idp.a"]
        sp.validate(idp.issue("alice", "app"))


class TestIdentitySurface:
    def test_canonical_count(self):
        idmap = IdentityMap().link("alice", "alice@a", "alice@b")
        count = idmap.canonical_count(["alice@a", "alice@b", "carol@a"])
        assert count == 2

    def test_qualified_identity_round(self):
        assert qualified_identity("inst", "u") == "u@inst"


class TestRoutingSurface:
    def test_destinations(self):
        policy = RoutingPolicy().allow("open", ["h1"]).exclude("secret")
        assert policy.destinations("open") == {"h1"}
        assert policy.destinations("secret") == set()
        assert policy.destinations("unlisted") is None
        assert RoutingPolicy(default="none").destinations("x") == set()


class TestStandardizeSurface:
    def test_federation_resource_names(self, federation):
        hub, _, specs, _ = federation
        assert federation_resource_names(hub) == sorted(specs)


class TestExplorerSurface:
    def test_clear_filter_and_filter_map(self, aggregated_instance):
        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        explorer.configure("cpu_hours", start=T0, end=END)
        explorer.filter("queue", ["normal"])
        assert explorer.state.filter_map() == {"queue": ("normal",)}
        explorer.clear_filter("queue")
        assert explorer.state.filter_map() == {}
        # back() past the beginning is a no-op
        for _ in range(10):
            explorer.back()
        assert explorer.state.metric == "cpu_hours"


class TestExportSurface:
    def test_chart_to_json(self, aggregated_instance):
        chart = ChartBuilder(jobs_realm(), aggregated_instance.schema).timeseries(
            "cpu_hours", start=T0, end=END, group_by="queue",
        )
        payload = json.loads(chart_to_json(chart))
        assert payload["title"] == chart.title
        assert len(payload["series"]) == len(chart.series)


class TestPredicateComparators:
    ROWS = [{"v": 1}, {"v": 2}, {"v": 3}, {"v": None}]

    def test_ne(self):
        assert len(Query(self.ROWS).where(P.ne("v", 2)).run()) == 3

    def test_lt_le_ge(self):
        assert len(Query(self.ROWS).where(P.lt("v", 2)).run()) == 1
        assert len(Query(self.ROWS).where(P.le("v", 2)).run()) == 2
        assert len(Query(self.ROWS).where(P.ge("v", 2)).run()) == 2


class TestTimeutilSurface:
    def test_from_ts_round_trip(self):
        epoch = ts(2017, 11, 5, 6, 7, 8)
        d = from_ts(epoch)
        assert (d.year, d.month, d.day, d.hour, d.minute, d.second) == (
            2017, 11, 5, 6, 7, 8,
        )


class TestJobRecordProperties:
    def test_node_hours(self, job_records):
        record = next(r for r in job_records if r.walltime_s > 0)
        assert record.node_hours == pytest.approx(
            record.nodes * record.walltime_s / 3600
        )
        assert record.cpu_hours >= record.node_hours
