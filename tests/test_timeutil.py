"""Period arithmetic and time helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import timeutil as tu

EPOCHS = st.integers(min_value=tu.ts(1990, 1, 1), max_value=tu.ts(2040, 12, 31))


def test_ts_round_trip_iso():
    epoch = tu.ts(2017, 7, 14, 12, 30, 45)
    assert tu.iso(epoch) == "2017-07-14T12:30:45"
    assert tu.parse_iso("2017-07-14T12:30:45") == epoch


def test_month_start_and_next():
    epoch = tu.ts(2017, 3, 15, 9)
    assert tu.month_start(epoch) == tu.ts(2017, 3, 1)
    assert tu.next_month(epoch) == tu.ts(2017, 4, 1)
    assert tu.next_month(tu.ts(2017, 12, 25)) == tu.ts(2018, 1, 1)


def test_quarter_boundaries():
    assert tu.quarter_start(tu.ts(2017, 5, 20)) == tu.ts(2017, 4, 1)
    assert tu.next_quarter(tu.ts(2017, 5, 20)) == tu.ts(2017, 7, 1)
    assert tu.next_quarter(tu.ts(2017, 11, 1)) == tu.ts(2018, 1, 1)


def test_year_boundaries():
    assert tu.year_start(tu.ts(2017, 6, 6)) == tu.ts(2017, 1, 1)
    assert tu.next_year(tu.ts(2017, 6, 6)) == tu.ts(2018, 1, 1)


def test_period_labels():
    epoch = tu.ts(2017, 8, 9)
    assert tu.period_label("day", epoch) == "2017-08-09"
    assert tu.period_label("month", epoch) == "2017-08"
    assert tu.period_label("quarter", epoch) == "2017 Q3"
    assert tu.period_label("year", epoch) == "2017"


def test_unknown_period_raises():
    with pytest.raises(ValueError):
        tu.period_start("week", 0)
    with pytest.raises(ValueError):
        tu.period_next("week", 0)
    with pytest.raises(ValueError):
        tu.period_label("week", 0)


def test_period_range_covers_window():
    windows = list(tu.period_range("month", tu.ts(2017, 1, 15), tu.ts(2017, 4, 2)))
    assert windows[0] == (tu.ts(2017, 1, 1), tu.ts(2017, 2, 1))
    assert windows[-1] == (tu.ts(2017, 4, 1), tu.ts(2017, 5, 1))
    assert len(windows) == 4


def test_period_range_empty_for_degenerate_window():
    assert list(tu.period_range("day", 100, 100)) == []
    assert list(tu.period_range("day", 100, 50)) == []


def test_overlap_seconds():
    assert tu.overlap_seconds(0, 10, 5, 20) == 5
    assert tu.overlap_seconds(0, 10, 10, 20) == 0
    assert tu.overlap_seconds(0, 10, -5, 100) == 10
    assert tu.overlap_seconds(0, 10, 20, 30) == 0


def test_days_in_month():
    assert tu.days_in_month(tu.ts(2017, 2, 10)) == 28
    assert tu.days_in_month(tu.ts(2016, 2, 10)) == 29
    assert tu.days_in_month(tu.ts(2017, 12, 31)) == 31


@pytest.mark.parametrize("period", tu.PERIODS)
@given(epoch=EPOCHS)
def test_period_start_idempotent(period, epoch):
    start = tu.period_start(period, epoch)
    assert tu.period_start(period, start) == start
    assert start <= epoch


@pytest.mark.parametrize("period", tu.PERIODS)
@given(epoch=EPOCHS)
def test_period_next_is_after_and_adjacent(period, epoch):
    start = tu.period_start(period, epoch)
    nxt = tu.period_next(period, epoch)
    assert nxt > epoch
    # the next period's start is exactly the current period's end
    assert tu.period_start(period, nxt) == nxt
    assert tu.period_next(period, start) == nxt


@given(epoch=EPOCHS)
def test_periods_nest(epoch):
    """day ⊆ month ⊆ quarter ⊆ year containment."""
    assert tu.month_start(epoch) <= tu.day_start(epoch)
    assert tu.quarter_start(epoch) <= tu.month_start(epoch)
    assert tu.year_start(epoch) <= tu.quarter_start(epoch)


@given(
    a=st.integers(min_value=0, max_value=10**6),
    b=st.integers(min_value=0, max_value=10**6),
    c=st.integers(min_value=0, max_value=10**6),
    d=st.integers(min_value=0, max_value=10**6),
)
def test_overlap_symmetric_and_bounded(a, b, c, d):
    a, b = sorted((a, b))
    c, d = sorted((c, d))
    ov = tu.overlap_seconds(a, b, c, d)
    assert ov == tu.overlap_seconds(c, d, a, b)
    assert 0 <= ov <= min(b - a, d - c)
