"""UI layer: charts, explorer drill-down, Job Viewer, export, reports."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.auth import Account, AccountStore, AuthError, Role
from repro.realms import jobs_realm
from repro.timeutil import ts
from repro.ui import (
    ChartBuilder,
    ChartSpec,
    JobNotFoundError,
    JobViewer,
    ReportDefinition,
    ReportGenerator,
    UsageExplorer,
    chart_to_csv,
    due_on,
    render_bars,
    render_lines,
    render_table,
    result_to_csv,
    result_to_json,
    run_schedule,
)
from tests.conftest import T0

END = ts(2017, 6, 1)


@pytest.fixture()
def builder(aggregated_instance):
    return ChartBuilder(jobs_realm(), aggregated_instance.schema)


class TestCharts:
    def test_timeseries_chart(self, builder):
        chart = builder.timeseries("cpu_hours", start=T0, end=END, group_by="queue")
        assert chart.view == "timeseries"
        assert chart.series
        # series ordered by descending total
        totals = [s.total() for s in chart.series]
        assert totals == sorted(totals, reverse=True)

    def test_top_n(self, builder):
        chart = builder.timeseries(
            "cpu_hours", start=T0, end=END, group_by="person", top_n=3
        )
        assert len(chart.series) <= 3

    def test_aggregate_chart(self, builder):
        chart = builder.aggregate("n_jobs_ended", start=T0, end=END, group_by="queue")
        assert chart.view == "aggregate"
        for series in chart.series:
            assert len(series.points) == 1

    def test_to_dict_json_ready(self, builder):
        chart = builder.timeseries("xdsu", start=T0, end=END)
        json.dumps(chart.to_dict())

    def test_series_lookup(self, builder):
        chart = builder.timeseries("cpu_hours", start=T0, end=END, group_by="queue")
        label = chart.labels[0]
        assert chart.series_by_label(label).label == label
        with pytest.raises(KeyError):
            chart.series_by_label("nope")


class TestExplorer:
    def test_drill_down_narrows_and_regroups(self, aggregated_instance):
        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        explorer.configure("cpu_hours", start=T0, end=END).group_by("queue")
        by_queue = explorer.fetch().totals()
        queue = max(by_queue, key=by_queue.get)
        explorer.drill_down(queue, "application")
        drilled = explorer.fetch()
        assert explorer.state.group_by == "application"
        assert sum(drilled.totals().values()) == pytest.approx(by_queue[queue])

    def test_filters_accumulate(self, aggregated_instance):
        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        explorer.configure("n_jobs_ended", start=T0, end=END)
        explorer.filter("queue", ["normal"]).filter("queue", ["debug"])
        assert dict(explorer.state.filters)["queue"] == ("debug", "normal")

    def test_back_navigation(self, aggregated_instance):
        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        explorer.configure("cpu_hours", start=T0, end=END)
        explorer.group_by("queue")
        explorer.back()
        assert explorer.state.group_by is None

    def test_breadcrumbs(self, aggregated_instance):
        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        explorer.configure("cpu_hours", start=T0, end=END).group_by("queue")
        crumbs = explorer.breadcrumbs
        assert crumbs[-1] == "cpu_hours by queue"

    def test_unconfigured_rejected(self, aggregated_instance):
        from repro.realms import RealmQueryError

        explorer = UsageExplorer(jobs_realm(), aggregated_instance.schema)
        with pytest.raises(RealmQueryError):
            explorer.fetch()
        with pytest.raises(RealmQueryError):
            UsageExplorer(jobs_realm(), aggregated_instance.schema).configure(
                "cpu_hours", start=T0, end=END
            ).drill_down("x", "queue")


class TestJobViewer:
    @pytest.fixture()
    def viewer(self, instance, job_records, small_resource):
        from repro.etl import ingest_performance
        from repro.simulators import generate_performance_batch

        batch = generate_performance_batch(job_records, small_resource, max_jobs=5)
        ingest_performance(instance.schema, batch)
        return JobViewer(instance.schema), batch[0].job_id

    def test_fetch_accounting_and_perf(self, viewer):
        jv, job_id = viewer
        detail = jv.fetch("testcluster", job_id)
        assert detail.accounting["job_id"] == job_id
        assert detail.has_performance
        assert detail.job_script.startswith("#!")
        assert set(detail.timeseries) == {
            "cpu_user", "cpu_system", "mem_used_gb", "mem_bw_gbs", "flops_gf",
            "io_read_mbs", "io_write_mbs", "block_read_mbs", "block_write_mbs",
        }

    def test_missing_job(self, viewer):
        jv, _ = viewer
        with pytest.raises(JobNotFoundError):
            jv.fetch("testcluster", 10**9)
        with pytest.raises(JobNotFoundError):
            jv.fetch("ghost_resource", 1)

    def test_acl_enforced(self, viewer):
        jv, job_id = viewer
        detail = jv.fetch("testcluster", job_id)
        owner = detail.accounting["user"]
        store = AccountStore("inst")
        store.add(Account(owner, roles={Role.USER}))
        store.add(Account("rando", roles={Role.USER}))
        store.add(Account("ops", roles={Role.CENTER_STAFF}))
        assert jv.fetch("testcluster", job_id,
                        session=store.open_session(owner, "local"))
        assert jv.fetch("testcluster", job_id,
                        session=store.open_session("ops", "local"))
        with pytest.raises(AuthError):
            jv.fetch("testcluster", job_id,
                     session=store.open_session("rando", "local"))

    def test_search(self, viewer, job_records):
        jv, _ = viewer
        user = job_records[0].user
        hits = jv.search(user=user, limit=10)
        assert hits and all(h["user"] == user for h in hits)
        assert jv.search(state="COMPLETED", limit=5)


class TestExport:
    def test_result_csv_parses(self, aggregated_instance):
        result = jobs_realm().query(
            aggregated_instance.schema, "cpu_hours",
            start=T0, end=END, group_by="queue",
        )
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert rows[0] == ["group", "period", "metric", "unit", "value"]
        assert len(rows) == len(result.rows) + 1

    def test_result_json_parses(self, aggregated_instance):
        result = jobs_realm().query(
            aggregated_instance.schema, "xdsu", start=T0, end=END,
        )
        payload = json.loads(result_to_json(result))
        assert payload["metric"] == "xdsu"
        assert payload["rows"]

    def test_chart_csv_matrix(self, builder):
        chart = builder.timeseries("cpu_hours", start=T0, end=END, group_by="queue")
        rows = list(csv.reader(io.StringIO(chart_to_csv(chart))))
        assert rows[0][0] == "period"
        assert rows[0][1:] == chart.labels


class TestAsciiRendering:
    def test_render_table_contains_all_series(self, builder):
        chart = builder.timeseries("cpu_hours", start=T0, end=END, group_by="queue")
        text = render_table(chart)
        for label in chart.labels:
            assert label in text

    def test_render_lines(self, builder):
        chart = builder.timeseries("cpu_hours", start=T0, end=END)
        text = render_lines(chart)
        assert "max =" in text

    def test_render_bars(self):
        text = render_bars(["a", "bb"], [10.0, 5.0], title="t")
        assert "#" in text and "bb" in text
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])


class TestReports:
    def test_generate_markdown_report(self, builder):
        definition = ReportDefinition(
            name="monthly", title="Monthly Utilization",
            charts=(
                ChartSpec("CPU hours by queue", "cpu_hours", group_by="queue"),
                ChartSpec("Jobs", "n_jobs_ended"),
            ),
        )
        report = ReportGenerator(builder, instance_label="test").generate(
            definition, start=T0, end=END
        )
        assert "# Monthly Utilization" in report.markdown
        assert "CPU hours by queue" in report.markdown
        assert len(report.charts) == 2

    def test_schedule_semantics(self):
        daily = ReportDefinition("d", "D", (), schedule="daily")
        monthly = ReportDefinition("m", "M", (), schedule="monthly")
        quarterly = ReportDefinition("q", "Q", (), schedule="quarterly")
        assert due_on(daily, ts(2017, 3, 15))
        assert due_on(monthly, ts(2017, 3, 1))
        assert not due_on(monthly, ts(2017, 3, 2))
        assert due_on(quarterly, ts(2017, 4, 1))
        assert not due_on(quarterly, ts(2017, 3, 1))

    def test_run_schedule(self):
        days = [ts(2017, 1, d) for d in range(1, 32)]
        out = run_schedule(
            [ReportDefinition("d", "D", (), schedule="daily"),
             ReportDefinition("m", "M", (), schedule="monthly")],
            days,
        )
        assert len(out["d"]) == 31
        assert len(out["m"]) == 1

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            ReportDefinition("x", "X", (), schedule="hourly")
