"""App-kernel QoS module: runs, degradations, control-chart detection."""

from __future__ import annotations


from repro.appkernels import (
    AppKernelRunner,
    AppKernelSpec,
    Degradation,
    availability,
    detect_flags,
    ingest_appkernels,
    merge_incidents,
)
from repro.simulators import ResourceSpec
from repro.timeutil import SECONDS_PER_DAY, ts
from repro.warehouse import Database

T0 = ts(2017, 1, 1)
RESOURCE = ResourceSpec("qos_cluster", 8, 16, 64, 16.0)


def run_window(days=60, *, degradations=(), seed=0, failure_rate=0.0):
    runner = AppKernelRunner(
        RESOURCE,
        kernels=(AppKernelSpec("probe", (16,), 600.0, noise=0.02),),
        seed=seed,
        failure_rate=failure_rate,
    )
    for degradation in degradations:
        runner.inject(degradation)
    return runner.run(T0, T0 + days * SECONDS_PER_DAY)


class TestRunner:
    def test_cadence_and_core_counts(self):
        runner = AppKernelRunner(RESOURCE, seed=1)
        results = runner.run(T0, T0 + 3 * SECONDS_PER_DAY)
        expected_per_day = sum(len(k.core_counts) for k in runner.kernels)
        assert len(results) == 3 * expected_per_day

    def test_deterministic(self):
        assert run_window(10) == run_window(10)

    def test_scaling_with_cores(self):
        spec = AppKernelSpec("scale", (8, 64), 1000.0, noise=0.0)
        runner = AppKernelRunner(RESOURCE, kernels=(spec,), seed=0, failure_rate=0.0)
        results = runner.run(T0, T0 + SECONDS_PER_DAY)
        by_cores = {r.cores: r.runtime_s for r in results}
        assert by_cores[64] < by_cores[8]

    def test_failures_have_no_runtime(self):
        results = run_window(30, failure_rate=0.5, seed=3)
        failed = [r for r in results if not r.succeeded]
        assert failed and all(r.runtime_s == 0.0 for r in failed)

    def test_availability(self):
        results = run_window(30, failure_rate=0.2, seed=3)
        rates = availability(results)
        assert 0.5 < rates["probe"] < 0.95


class TestQosDetection:
    DEGRADATION = Degradation(
        start_ts=T0 + 30 * SECONDS_PER_DAY,
        end_ts=T0 + 40 * SECONDS_PER_DAY,
        slowdown=1.5,
    )

    def test_degradation_flagged(self):
        results = run_window(60, degradations=[self.DEGRADATION])
        flags = detect_flags(results)
        assert flags
        window = (self.DEGRADATION.start_ts, self.DEGRADATION.end_ts)
        assert all(window[0] <= f.ts < window[1] for f in flags)
        assert all(f.sigma >= 4.0 for f in flags)

    def test_clean_run_mostly_quiet(self):
        flags = detect_flags(run_window(60))
        assert len(flags) <= 2  # noise may produce the odd false positive

    def test_kernel_scoped_degradation(self):
        io_only = Degradation(
            start_ts=T0 + 20 * SECONDS_PER_DAY,
            end_ts=T0 + 25 * SECONDS_PER_DAY,
            slowdown=2.0,
            kernels=("ior",),
        )
        runner = AppKernelRunner(RESOURCE, seed=2, failure_rate=0.0)
        runner.inject(io_only)
        results = runner.run(T0, T0 + 50 * SECONDS_PER_DAY)
        flags = detect_flags(results)
        assert flags
        assert {f.kernel for f in flags} == {"ior"}

    def test_incident_merging(self):
        results = run_window(60, degradations=[self.DEGRADATION])
        flags = detect_flags(results)
        incidents = merge_incidents(flags, gap_s=2 * SECONDS_PER_DAY)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.n_runs == len(flags)
        assert incident.worst_sigma >= 4.0

    def test_incidents_split_on_gap(self):
        early = Degradation(T0 + 10 * SECONDS_PER_DAY, T0 + 12 * SECONDS_PER_DAY, 1.6)
        late = Degradation(T0 + 40 * SECONDS_PER_DAY, T0 + 42 * SECONDS_PER_DAY, 1.6)
        results = run_window(60, degradations=[early, late])
        incidents = merge_incidents(
            detect_flags(results), gap_s=2 * SECONDS_PER_DAY
        )
        assert len(incidents) == 2


class TestIngest:
    def test_warehouse_storage(self):
        schema = Database().create_schema("modw")
        results = run_window(10)
        n = ingest_appkernels(schema, results)
        assert n == len(results)
        assert len(schema.table("fact_appkernel")) == n
        # append-only: second batch continues ids
        ingest_appkernels(schema, results[:3])
        assert len(schema.table("fact_appkernel")) == n + 3
