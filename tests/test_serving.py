"""The cache-first serving layer behind /query and /chart.

Covers the PR-6 read-path hardening end to end: warehouse
``data_version`` exposure, the query-result cache (hit / stale / evict
semantics, byte-identical answers, invalidation on mutation),
ETag/``If-None-Match`` 304s, ``offset``/``limit`` pagination, strict
JSON under ±Inf/NaN samples, the 400/500 guards, session-table
eviction, phantom-member gauge removal on ``leave()``, materialized
views refreshed by the federation's post-aggregation hook, and the
``api_error_ratio_high`` SLO rule — plus concurrent clients over a live
ThreadingHTTPServer with an invalidation landing mid-flight.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.auth.accounts import Session
from repro.obs import (
    GLOBAL_SCOPE,
    AlertEngine,
    FakeClock,
    MetricError,
    MetricsRegistry,
    Observability,
    alert_rule,
)
from repro.realms import jobs_realm
from repro.timeutil import ts
from repro.ui import (
    QueryService,
    ServingParamError,
    ViewSpec,
    XdmodApi,
    json_sanitize,
)
from repro.ui.rest import ApiServer
from repro.ui.serving import QueryCache, QueryRequest
from tests.conftest import T0

END = ts(2017, 6, 1)
QUERY = (
    f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={END}&group_by=queue"
)
CHART = (
    f"/chart?realm=jobs&metric=xdsu&start={T0}&end={END}&group_by=queue"
)


@pytest.fixture()
def api(aggregated_instance):
    return XdmodApi(
        {"jobs": jobs_realm()}, aggregated_instance.schema,
        obs=Observability.default(),
    )


def _lookups(api: XdmodApi) -> dict[str, float]:
    registry = api.obs.registry
    return {
        result: registry.value("serving_cache_lookups_total", result=result)
        for result in ("hit", "miss", "stale", "bypass")
    }


class TestDataVersion:
    """The warehouse side of invalidation: one counter, always bumped."""

    def test_bumps_on_insert_update_delete(self, instance):
        schema = instance.schema
        v0 = schema.data_version
        table = schema.table("fact_job")
        row = next(table.rows())
        table.update_where(
            lambda r: r["job_id"] == row["job_id"], {"cores": 99}
        )
        v1 = schema.data_version
        assert v1 > v0
        table.delete_where(lambda r: r["job_id"] == row["job_id"])
        assert schema.data_version > v1

    def test_bumps_on_create_and_drop_table(self, instance):
        from repro.warehouse import ColumnType, TableSchema, make_columns

        schema = instance.schema
        v0 = schema.data_version
        schema.create_table(TableSchema(
            "scratch", make_columns([("a", ColumnType.INT, False)])
        ))
        v1 = schema.data_version
        assert v1 > v0
        schema.drop_table("scratch")
        assert schema.data_version > v1

    def test_service_version_token_covers_all_sources(self, federation):
        hub, satellites, _, _ = federation
        site0 = satellites["site0"]
        service = QueryService({"jobs": jobs_realm()}, hub.federated_schemas())
        before = service.source_versions()
        site0.schema.table("fact_job").update_where(lambda r: True, {"cores": 1})
        hub.sync()
        assert service.source_versions() != before


class TestQueryCache:
    def test_hit_miss_stale_counters(self, aggregated_instance, api):
        assert api.handle(QUERY, {})[0] == 200
        assert _lookups(api)["miss"] == 1
        assert api.handle(QUERY, {})[0] == 200
        assert _lookups(api)["hit"] == 1
        # any warehouse mutation invalidates: stale recompute, then hits
        aggregated_instance.schema.table("fact_job").update_where(
            lambda r: True, {"exit_code": 0}
        )
        assert api.handle(QUERY, {})[0] == 200
        assert api.handle(QUERY, {})[0] == 200
        counts = _lookups(api)
        assert counts == {"hit": 2.0, "miss": 1.0, "stale": 1.0, "bypass": 0.0}

    def test_cached_and_uncached_bodies_byte_identical(self, aggregated_instance):
        realms = {"jobs": jobs_realm()}
        cached = XdmodApi(
            realms, aggregated_instance.schema, obs=Observability.default()
        )
        uncached = XdmodApi(realms, aggregated_instance.schema, cache=False)
        for path in (QUERY, CHART, QUERY + "&offset=1&limit=2"):
            first = cached.handle_raw(path, {})
            again = cached.handle_raw(path, {})  # warm: served from cache
            baseline = uncached.handle_raw(path, {})
            assert first == again == baseline

    def test_stale_entry_recomputes_new_values(self, aggregated_instance, api):
        _, before = api.handle(QUERY, {})
        schema = aggregated_instance.schema
        schema.table("fact_job").update_where(lambda r: True, {"cpu_hours": 0.0})
        aggregated_instance.aggregate(["day", "month"])
        _, after = api.handle(QUERY, {})
        assert before["rows"] != after["rows"]
        assert all(r["value"] == 0.0 for r in after["rows"])
        # re-stamped: the recomputed entry now serves hits
        assert api.handle(QUERY, {})[1] == after
        assert _lookups(api)["hit"] >= 1

    def test_lru_eviction_counted_and_bounded(self, aggregated_instance):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            obs=Observability.default(), cache_entries=3,
        )
        for metric in ("cpu_hours", "xdsu", "n_jobs_ended", "node_hours"):
            path = f"/query?realm=jobs&metric={metric}&start={T0}&end={END}"
            assert api.handle(path, {})[0] == 200
        assert len(api.serving.cache) == 3
        registry = api.obs.registry
        assert registry.value("serving_cache_evictions_total") == 1
        assert registry.value("serving_cache_entries_rows") == 3

    def test_no_cache_mode_counts_bypass(self, aggregated_instance):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            obs=Observability.default(), cache=False,
        )
        api.handle(QUERY, {})
        api.handle(QUERY, {})
        counts = _lookups(api)
        assert counts["bypass"] == 2 and counts["hit"] == 0
        assert len(api.serving.cache) == 0

    def test_cache_key_excludes_pagination(self):
        base = {"realm": "jobs", "metric": "x", "start": "0", "end": "1"}
        a = QueryRequest.parse(base, chart=False)
        b = QueryRequest.parse({**base, "offset": "2", "limit": "1"}, chart=False)
        c = QueryRequest.parse({**base, "period": "day"}, chart=False)
        assert a.key == b.key and a.key != c.key

    def test_cache_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)


class TestBadParameters:
    """Satellite: parse errors are 400s, never a dead handler thread."""

    @pytest.mark.parametrize("suffix", [
        "&top_n=abc", "&offset=abc", "&limit=abc", "&offset=-1", "&limit=-1",
        "&top_n=0",
    ])
    def test_bad_numeric_params_are_400(self, api, suffix):
        path = CHART if "top_n" in suffix else QUERY
        status, payload = api.handle(path + suffix, {})
        assert status == 400 and "bad parameters" in payload["error"]

    def test_missing_params_named(self, api):
        status, payload = api.handle("/query?realm=jobs", {})
        assert status == 400
        assert "metric" in payload["error"] and "start" in payload["error"]

    def test_parse_error_type(self):
        with pytest.raises(ServingParamError):
            QueryRequest.parse(
                {"realm": "r", "metric": "m", "start": "x", "end": "1"},
                chart=False,
            )

    def test_top_n_abc_over_live_server(self, api):
        with ApiServer(api) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                with urllib.request.urlopen(
                    f"{server.url}{CHART}&top_n=abc", timeout=10
                ):
                    pass
            assert exc.value.code == 400
            assert "bad parameters" in json.loads(exc.value.read())["error"]

    def test_handler_exception_yields_500_json(self, api, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("handler bug")

        monkeypatch.setattr(api.serving, "respond", boom)
        status, ctype, body = api.handle_raw(QUERY, {})
        assert status == 500 and ctype == "application/json"
        assert "handler bug" in json.loads(body)["error"]
        registry = api.obs.registry
        assert registry.value(
            "serving_requests_total", route="/query", **{"class": "5xx"}
        ) == 1
        with ApiServer(api) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                with urllib.request.urlopen(server.url + QUERY, timeout=10):
                    pass
            assert exc.value.code == 500
            assert "handler bug" in json.loads(exc.value.read())["error"]


class TestStrictJson:
    """Satellite: ±Inf/NaN registry samples must serialize as valid JSON."""

    def test_sanitizer(self):
        raw = {
            "inf": float("inf"),
            "nested": [float("-inf"), {"nan": float("nan")}],
            "fine": [1.5, "text", None, True],
        }
        clean = json_sanitize(raw)
        assert clean["inf"] == "+Inf"
        assert clean["nested"][0] == "-Inf"
        assert clean["nested"][1]["nan"] == "NaN"
        assert clean["fine"] == [1.5, "text", None, True]
        json.dumps(clean, allow_nan=False)  # must not raise

    def _poison_registry(self, registry: MetricsRegistry) -> None:
        gauge = registry.gauge("poison_gauge_rows", "nonfinite", ("kind",))
        gauge.labels(kind="pos").set(float("inf"))
        gauge.labels(kind="nan").set(float("nan"))
        hist = registry.histogram(
            "poison_seconds", "explicit +Inf bound",
            buckets=(0.1, float("inf")),
        )
        hist.observe(float("inf"))

    def test_metrics_json_route_with_nonfinite_samples(self, api):
        self._poison_registry(api.obs.registry)
        status, ctype, body = api.handle_raw("/metrics", {"Accept": "json"})
        # Prometheus text path still renders (it spells inf as +Inf natively)
        assert status == 200 and "text/plain" in ctype
        status, payload, _ = api.handle_full("/metrics", {})
        assert status == 200
        body = json.dumps(json_sanitize(payload), allow_nan=False)
        decoded = json.loads(body)
        values = {
            v["labels"]["kind"]: v["value"]
            for v in decoded["poison_gauge_rows"]["values"]
        }
        assert values == {"pos": "+Inf", "nan": "NaN"}
        assert decoded["poison_seconds"]["values"][0]["sum"] == "+Inf"

    def test_status_embeds_snapshot_safely_over_http(self, federation):
        from repro.core.monitor import FederationMonitor

        hub, _, _, _ = federation
        monitor = FederationMonitor(hub)
        self._poison_registry(hub.obs.registry)
        api = XdmodApi(
            {"jobs": jobs_realm()}, hub.federated_schemas(),
            obs=hub.obs, monitor=monitor,
        )
        with ApiServer(api) as server:
            with urllib.request.urlopen(f"{server.url}/status", timeout=10) as r:
                payload = json.loads(r.read())  # strict parser: would choke on NaN
        metrics = payload["metrics"]
        assert metrics["poison_gauge_rows"]["values"][0]["value"] in ("+Inf", "NaN")
        assert metrics["poison_seconds"]["values"][0]["sum"] == "+Inf"


class TestEtagAndPagination:
    def test_etag_roundtrip_unit(self, api):
        status, payload, headers = api.handle_full(QUERY, {})
        assert status == 200 and headers["ETag"].startswith('"')
        assert headers["X-Cache"] == "miss"
        status, payload2, headers2 = api.handle_full(
            QUERY, {"If-None-Match": headers["ETag"]}
        )
        assert status == 304 and payload2 == {}
        assert headers2["ETag"] == headers["ETag"]
        # weak-comparison and list forms match too
        status, _, _ = api.handle_full(
            QUERY, {"If-None-Match": f'W/{headers["ETag"]}, "other"'}
        )
        assert status == 304

    def test_etag_changes_when_data_changes(self, aggregated_instance, api):
        _, _, headers = api.handle_full(QUERY, {})
        aggregated_instance.schema.table("fact_job").update_where(
            lambda r: True, {"cpu_hours": 0.0}
        )
        aggregated_instance.aggregate(["day", "month"])
        status, _, headers2 = api.handle_full(
            QUERY, {"If-None-Match": headers["ETag"]}
        )
        assert status == 200 and headers2["ETag"] != headers["ETag"]

    def test_pagination_windows_partition_rows(self, api):
        _, full = api.handle(QUERY, {})
        total = full["total_rows"]
        assert total == len(full["rows"]) and full["offset"] == 0
        pages = []
        for offset in range(0, total, 2):
            _, page = api.handle(f"{QUERY}&offset={offset}&limit=2", {})
            assert page["total_rows"] == total and len(page["rows"]) <= 2
            pages.extend(page["rows"])
        assert pages == full["rows"]
        _, beyond = api.handle(f"{QUERY}&offset={total + 5}&limit=2", {})
        assert beyond["rows"] == []

    def test_chart_pagination_slices_series(self, api):
        _, full = api.handle(CHART, {})
        assert full["total_series"] == len(full["series"]) >= 2
        _, page = api.handle(f"{CHART}&limit=1", {})
        assert len(page["series"]) == 1
        assert page["series"][0] == full["series"][0]

    def test_304_and_pagination_over_http(self, api):
        with ApiServer(api) as server:
            with urllib.request.urlopen(
                f"{server.url}{QUERY}&limit=2", timeout=10
            ) as r:
                etag = r.headers["ETag"]
                assert r.headers["X-Cache"] == "miss"
                assert len(json.loads(r.read())["rows"]) == 2
            request = urllib.request.Request(
                f"{server.url}{QUERY}&limit=2",
                headers={"If-None-Match": etag},
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(request, timeout=10)
            assert exc.value.code == 304
            assert exc.value.read() == b""
            # different window, same cache entry: new ETag, still a hit
            with urllib.request.urlopen(
                f"{server.url}{QUERY}&limit=3", timeout=10
            ) as r:
                assert r.headers["ETag"] != etag
                assert r.headers["X-Cache"] == "hit"


class TestSessionEviction:
    """Satellite: the token table stays bounded by live sessions."""

    @staticmethod
    def _session(token: str, *, ttl: float) -> Session:
        now = time.time()
        return Session(
            token=token, username="u", instance="i", method="local",
            issued_at=now, expires_at=now + ttl,
            capabilities=frozenset({"query"}),
        )

    def test_register_evicts_expired(self, aggregated_instance):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            require_auth=True,
        )
        for i in range(5):
            api.register_session(self._session(f"dead{i}", ttl=-1.0))
        assert len(api._sessions) == 1  # each registration evicted the last
        api.register_session(self._session("live", ttl=3600.0))
        assert set(api._sessions) == {"live"}

    def test_expired_token_evicted_on_access(self, aggregated_instance):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            require_auth=True,
        )
        api.register_session(self._session("stale", ttl=-1.0))
        status, _ = api.handle(
            QUERY, {"Authorization": "Bearer stale"}
        )
        assert status == 401 and "stale" not in api._sessions


class TestPhantomMemberGauges:
    """Satellite: leave() must remove the member's gauge series."""

    def test_remove_labels_unit(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("phantom_rows", "", ("member", "kind"))
        gauge.labels(member="a", kind="x").set(1)
        gauge.labels(member="a", kind="y").set(2)
        gauge.labels(member="b", kind="x").set(3)
        assert registry.remove_labels("phantom_rows", member="a") is True
        assert registry.value("phantom_rows", member="a", kind="x") == 0.0
        assert registry.value("phantom_rows", member="b", kind="x") == 3.0
        assert registry.remove_labels("phantom_rows", member="a") is False
        assert registry.remove_labels("no_such_metric_rows", member="a") is False
        with pytest.raises(MetricError):
            registry.remove_labels("phantom_rows", bogus="a")

    def test_leave_clears_member_series(self, federation):
        hub, _, _, _ = federation
        hub.sync()
        text = hub.obs.registry.render_prometheus()
        assert 'replication_lag_rows{member="site0"}' in text
        hub.leave("site0")
        text = hub.obs.registry.render_prometheus()
        assert 'replication_lag_rows{member="site0"}' not in text
        assert 'federation_dead_letters_rows{member="site0"}' not in text
        # the surviving member's series is untouched
        assert 'replication_lag_rows{member="site1"}' in text


class TestMaterializedViews:
    def test_post_aggregation_hook_refreshes_views(self, federation):
        hub, satellites, _, _ = federation
        site0 = satellites["site0"]
        api = XdmodApi(
            {"jobs": jobs_realm()}, hub.federated_schemas(), obs=hub.obs,
        )
        end = ts(2017, 2, 1)
        view = api.serving.register_view(ViewSpec(
            "jobs", "cpu_hours", T0, end, group_by="resource",
            view="aggregate",
        ))
        chart_view = api.serving.register_view(ViewSpec(
            "jobs", "xdsu", T0, end, group_by="person", view="aggregate",
            chart=True, top_n=3, title="top people",
        ))
        assert api.serving.views == (view, chart_view)
        hub.add_post_aggregation_hook(api.serving.materialize)
        hub.aggregate_federation(["month"])
        refreshes = hub.obs.registry.value("serving_view_refreshes_total")
        assert refreshes == 2
        # a request matching the view is served from cache, byte-for-byte
        path = (
            f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={end}"
            "&group_by=resource&view=aggregate"
        )
        status, _, headers = api.handle_full(path, {})
        assert status == 200 and headers["X-Cache"] == "hit"
        # new replicated data + re-aggregation re-materializes to fresh rows
        site0.schema.table("fact_job").update_where(lambda r: True, {"cpu_hours": 0.0})
        hub.sync()
        hub.aggregate_federation(["month"])
        assert hub.obs.registry.value("serving_view_refreshes_total") == 4
        status, payload, headers = api.handle_full(path, {})
        assert status == 200 and headers["X-Cache"] == "hit"
        assert any(r["value"] == 0.0 for r in payload["rows"])

    def test_register_views_deduplicates(self, aggregated_instance):
        api = XdmodApi({"jobs": jobs_realm()}, aggregated_instance.schema)
        spec = ViewSpec("jobs", "cpu_hours", T0, END)
        assert api.serving.register_views([spec, spec]) == 1
        assert api.serving.stats()["views"] == 1


class TestErrorRatioAlert:
    def test_api_error_ratio_high_fires_globally(self):
        clock = FakeClock(1000.0)
        obs = Observability(clock=clock)
        api_requests = obs.registry.counter(
            "serving_requests_total",
            "API requests by route and status class",
            ("route", "class"),
        )
        engine = AlertEngine(
            obs.history, [alert_rule("api_error_ratio_high")]
        )
        # healthy traffic: 2xx only
        api_requests.labels(route="/query", **{"class": "2xx"}).inc(50)
        obs.history.record()
        engine.evaluate(["site0"])
        state = engine.state_of("api_error_ratio_high", GLOBAL_SCOPE)
        assert state is not None and state.status == "inactive"
        # an outage: 5 errors per minute against 20 successes = 20% > 5%
        # (the first 5xx sample only establishes the series — increase()
        # needs a predecessor — so breach cycles start one record later)
        for _ in range(3):
            clock.advance(60)
            api_requests.labels(route="/query", **{"class": "5xx"}).inc(5)
            api_requests.labels(route="/query", **{"class": "2xx"}).inc(20)
            obs.history.record()
            engine.evaluate(["site0"])
        state = engine.state_of("api_error_ratio_high", GLOBAL_SCOPE)
        assert state is not None and state.status == "firing"
        # global scope: never evaluated per member
        assert engine.state_of("api_error_ratio_high", "site0") is None
        # recovery: error-free windows resolve it
        for _ in range(12):
            clock.advance(60)
            api_requests.labels(route="/query", **{"class": "2xx"}).inc(20)
            obs.history.record()
        engine.evaluate(["site0"])
        assert state.status == "resolved"


class TestConcurrentClients:
    """Tentpole acceptance: concurrency + mid-flight invalidation."""

    N_THREADS = 6
    ROUNDS = 15

    def test_concurrent_hits_stay_correct_across_version_bump(
        self, aggregated_instance
    ):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            obs=Observability.default(),
        )
        uncached = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema, cache=False,
        )
        paths = [
            QUERY,
            CHART,
            f"/query?realm=jobs&metric=n_jobs_ended&start={T0}&end={END}",
        ]
        flipped = threading.Event()
        failures: list[str] = []

        def flip() -> None:
            # the mid-flight invalidation: zero out a metric and
            # re-aggregate while clients are hammering the cache
            aggregated_instance.schema.table("fact_job").update_where(
                lambda r: True, {"cpu_hours": 0.0}
            )
            aggregated_instance.aggregate(["day", "month"])
            flipped.set()

        def client(seq: int) -> None:
            for i in range(self.ROUNDS):
                path = paths[(seq + i) % len(paths)]
                if seq == 0 and i == self.ROUNDS // 2:
                    flip()
                with server_lock:
                    pass  # serialize nothing; just a GIL yield point
                try:
                    with urllib.request.urlopen(
                        server.url + path, timeout=30
                    ) as r:
                        assert r.status == 200
                        json.loads(r.read())
                except Exception as exc:
                    failures.append(f"{path}: {exc!r}")

        server_lock = threading.Lock()
        with ApiServer(api) as server:
            threads = [
                threading.Thread(target=client, args=(seq,))
                for seq in range(self.N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures, failures[:5]
        assert flipped.is_set()
        # after the dust settles: cache serves the post-flip world,
        # byte-identical to an uncached recompute
        for path in paths:
            assert api.handle_raw(path, {}) == uncached.handle_raw(path, {})
        counts = _lookups(api)
        assert counts["hit"] > 0 and counts["stale"] >= 1
        # requests observed server-side with latency samples
        count, _ = api.obs.registry.histogram_stats(
            "serving_request_seconds", route="/query"
        )
        assert count > 0
