"""Mini JSON-Schema validator."""

from __future__ import annotations

import pytest

from repro.etl import JsonSchemaError, is_valid, validate


class TestTypes:
    @pytest.mark.parametrize(
        "schema,ok,bad",
        [
            ({"type": "string"}, "x", 5),
            ({"type": "integer"}, 3, 3.5),
            ({"type": "number"}, 3.5, "3.5"),
            ({"type": "boolean"}, True, 1),
            ({"type": "object"}, {}, []),
            ({"type": "array"}, [], {}),
            ({"type": "null"}, None, 0),
        ],
    )
    def test_type_dispatch(self, schema, ok, bad):
        validate(ok, schema)
        with pytest.raises(JsonSchemaError):
            validate(bad, schema)

    def test_bool_is_not_integer(self):
        with pytest.raises(JsonSchemaError):
            validate(True, {"type": "integer"})
        with pytest.raises(JsonSchemaError):
            validate(True, {"type": "number"})

    def test_union_types(self):
        schema = {"type": ["string", "null"]}
        validate("x", schema)
        validate(None, schema)
        with pytest.raises(JsonSchemaError):
            validate(3, schema)


class TestNumericBounds:
    def test_minimum_maximum_inclusive(self):
        schema = {"type": "number", "minimum": 0, "maximum": 10}
        validate(0, schema)
        validate(10, schema)
        with pytest.raises(JsonSchemaError):
            validate(-0.1, schema)
        with pytest.raises(JsonSchemaError):
            validate(10.5, schema)

    def test_exclusive_bounds(self):
        schema = {"exclusiveMinimum": 0, "exclusiveMaximum": 1}
        validate(0.5, schema)
        with pytest.raises(JsonSchemaError):
            validate(0, schema)
        with pytest.raises(JsonSchemaError):
            validate(1, schema)


class TestStrings:
    def test_length_bounds(self):
        schema = {"type": "string", "minLength": 2, "maxLength": 4}
        validate("ab", schema)
        with pytest.raises(JsonSchemaError):
            validate("a", schema)
        with pytest.raises(JsonSchemaError):
            validate("abcde", schema)

    def test_pattern(self):
        schema = {"type": "string", "pattern": "^/"}
        validate("/scratch", schema)
        with pytest.raises(JsonSchemaError):
            validate("scratch", schema)

    def test_enum(self):
        schema = {"enum": ["a", "b"]}
        validate("a", schema)
        with pytest.raises(JsonSchemaError):
            validate("c", schema)


class TestObjectsAndArrays:
    SCHEMA = {
        "type": "object",
        "required": ["name"],
        "additionalProperties": False,
        "properties": {
            "name": {"type": "string"},
            "sizes": {"type": "array", "items": {"type": "integer"}, "minItems": 1},
        },
    }

    def test_required_enforced(self):
        with pytest.raises(JsonSchemaError) as exc:
            validate({}, self.SCHEMA)
        assert "name" in str(exc.value)

    def test_additional_properties_false(self):
        with pytest.raises(JsonSchemaError):
            validate({"name": "x", "extra": 1}, self.SCHEMA)

    def test_nested_items_path_in_error(self):
        with pytest.raises(JsonSchemaError) as exc:
            validate({"name": "x", "sizes": [1, "two"]}, self.SCHEMA)
        assert "/sizes/1" in str(exc.value)

    def test_min_items(self):
        with pytest.raises(JsonSchemaError):
            validate({"name": "x", "sizes": []}, self.SCHEMA)

    def test_additional_properties_schema(self):
        schema = {"type": "object", "additionalProperties": {"type": "integer"}}
        validate({"a": 1, "b": 2}, schema)
        with pytest.raises(JsonSchemaError):
            validate({"a": "nope"}, schema)

    def test_valid_document(self):
        validate({"name": "x", "sizes": [1, 2]}, self.SCHEMA)
        assert is_valid({"name": "x"}, self.SCHEMA)
        assert not is_valid({"nope": 1}, self.SCHEMA)
