"""Routing policies, consistency checks, backup regeneration, identity."""

from __future__ import annotations

import pytest

from repro.core import (
    ConsistencyError,
    FederationHub,
    FederationNetwork,
    IdentityError,
    IdentityMap,
    MembershipError,
    RoutingPolicy,
    XdmodInstance,
    check_federation,
    check_member,
    federated_user_counts,
    filter_for_hub,
    qualified_identity,
    regenerate_satellite,
    verify_regeneration,
)
from repro.etl import WAREHOUSE_SCHEMA, ParsedJob, ingest_jobs
from repro.timeutil import ts


def make_job(job_id, resource="r1", user="alice"):
    return ParsedJob(
        job_id=job_id, user=user, pi="p", queue="q", application="a",
        submit_ts=ts(2017, 2, 1), start_ts=ts(2017, 2, 1, 1),
        end_ts=ts(2017, 2, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource=resource,
    )


class TestRoutingPolicy:
    def test_default_all(self):
        policy = RoutingPolicy()
        assert policy.admitted("anything", "hub1")

    def test_default_none(self):
        policy = RoutingPolicy(default="none")
        assert not policy.admitted("anything", "hub1")
        policy.allow("public", ["hub1"])
        assert policy.admitted("public", "hub1")
        assert not policy.admitted("public", "hub2")

    def test_exclude(self):
        policy = RoutingPolicy().exclude("secret")
        assert not policy.admitted("secret", "any_hub")
        assert policy.admitted("open", "any_hub")

    def test_bad_default(self):
        with pytest.raises(MembershipError):
            RoutingPolicy(default="maybe")

    def test_filter_compilation(self):
        policy = RoutingPolicy().exclude("secret").allow("semi", ["hub1"])
        f1 = filter_for_hub(policy, "hub1", ["secret", "semi", "open"])
        assert "secret" in f1.exclude_resources
        assert "semi" not in f1.exclude_resources
        f2 = filter_for_hub(policy, "hub2", ["secret", "semi", "open"])
        assert {"secret", "semi"} <= f2.exclude_resources


class TestFederationNetwork:
    def _satellite(self, name, *, resources=("open", "secret")):
        inst = XdmodInstance(name)
        jobs = [
            make_job(i + 1, resource=res)
            for i, res in enumerate(resources)
        ]
        ingest_jobs(inst.schema, jobs)
        return inst

    def test_multi_hub_backup_topology(self):
        """'data from all resources could be replicated to multiple
        federation hubs, to provide a live backup'."""
        net = FederationNetwork()
        hub_a = net.add_hub(FederationHub("hub_a"))
        hub_b = net.add_hub(FederationHub("hub_b"))
        satellite = self._satellite("sat", resources=("open",))
        net.connect(satellite)
        for hub in (hub_a, hub_b):
            fact = hub.database.schema("fed_sat").table("fact_job")
            assert fact.checksum() == satellite.schema.table("fact_job").checksum()

    def test_sensitive_resource_excluded_everywhere(self):
        net = FederationNetwork(RoutingPolicy().exclude("secret"))
        hub = net.add_hub(FederationHub("hub"))
        net.connect(self._satellite("sat"))
        names = {
            r["name"]
            for r in hub.database.schema("fed_sat").table("dim_resource").rows()
        }
        assert "secret" not in names

    def test_per_hub_routing(self):
        policy = RoutingPolicy(default="none")
        policy.allow("open", ["hub_a", "hub_b"]).allow("semi", ["hub_a"])
        net = FederationNetwork(policy)
        hub_a = net.add_hub(FederationHub("hub_a"))
        hub_b = net.add_hub(FederationHub("hub_b"))
        net.connect(self._satellite("sat", resources=("open", "semi")))
        rows_a = {
            r["name"]
            for r in hub_a.database.schema("fed_sat").table("dim_resource").rows()
        }
        rows_b = {
            r["name"]
            for r in hub_b.database.schema("fed_sat").table("dim_resource").rows()
        }
        assert rows_a == {"open", "semi"}
        assert rows_b == {"open"}

    def test_duplicate_hub_rejected(self):
        net = FederationNetwork()
        net.add_hub(FederationHub("h"))
        with pytest.raises(MembershipError):
            net.add_hub(FederationHub("h"))

    def test_sync_all(self):
        net = FederationNetwork()
        net.add_hub(FederationHub("h"))
        satellite = self._satellite("sat", resources=("open",))
        net.connect(satellite)
        ingest_jobs(satellite.schema, [make_job(99, resource="open")])
        out = net.sync_all()
        assert out["h"]["sat"] > 0


class TestConsistency:
    def test_clean_federation_passes(self, federation):
        hub, _, _, _ = federation
        check = check_federation(hub, strict=True)
        assert check.ok
        totals = check.federation_totals()
        assert totals["n_jobs"] == sum(
            t["n_jobs"] for t in check.satellite_totals.values()
        )

    def test_detects_hub_side_tampering(self, federation):
        hub, _, _, _ = federation
        hub.database.schema("fed_site0").table("fact_job").update_where(
            lambda r: True, {"cpu_hours": 0.0}
        )
        check = check_federation(hub)
        assert not check.ok
        with pytest.raises(ConsistencyError):
            check_federation(hub, strict=True)

    def test_member_check_reports_tables(self, federation):
        hub, _, _, _ = federation
        check = check_member(hub, "site0")
        assert check.ok and not check.filtered
        assert {t.table for t in check.tables} >= {"fact_job", "dim_person"}


class TestBackup:
    def test_regeneration_is_exact(self, federation):
        hub, satellites, _, _ = federation
        restored = regenerate_satellite(hub, "site0")
        report = verify_regeneration(
            satellites["site0"].schema, restored.schema(WAREHOUSE_SCHEMA)
        )
        assert report.exact
        assert "fact_job" in report.matching

    def test_regenerated_instance_can_reaggregate(self, federation):
        hub, satellites, _, _ = federation
        restored_db = regenerate_satellite(hub, "site0")
        from repro.aggregation import Aggregator

        schema = restored_db.schema(WAREHOUSE_SCHEMA)
        Aggregator(schema).aggregate_jobs("month")
        raw = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
        agg = sum(r["cpu_hours"] for r in schema.table("agg_job_month").rows())
        assert agg == pytest.approx(raw)

    def test_strict_verification_raises_on_mismatch(self, federation):
        hub, satellites, _, _ = federation
        restored = regenerate_satellite(hub, "site0")
        schema = restored.schema(WAREHOUSE_SCHEMA)
        schema.table("fact_job").delete_where(lambda r: r["job_id"] % 2 == 0)
        with pytest.raises(ConsistencyError):
            verify_regeneration(
                satellites["site0"].schema, schema, strict=True
            )

    def test_unknown_member(self, federation):
        hub, _, _, _ = federation
        with pytest.raises(MembershipError):
            regenerate_satellite(hub, "ghost")


class TestIdentity:
    def test_qualified_identity_format(self):
        assert qualified_identity("ccr", "alice") == "alice@ccr"

    def test_unmapped_user_appears_once_per_instance(self, federation):
        """Section II-D4: 'the user would appear twice in the federation'."""
        hub, satellites, _, _ = federation
        counts = federated_user_counts(hub)
        per_site = [
            len(s.schema.table("dim_person"))
            for s in satellites.values()
        ]
        assert counts["qualified"] == sum(per_site)
        assert counts["canonical"] == counts["qualified"]

    def test_identity_map_merges(self, federation):
        hub, satellites, _, _ = federation
        users = {
            name: [r["username"] for r in s.schema.table("dim_person").rows()]
            for name, s in satellites.items()
        }
        idmap = IdentityMap.from_username_match(users)
        counts = federated_user_counts(hub, idmap)
        overlap = set(users["site0"]) & set(users["site1"])
        assert counts["canonical"] == counts["qualified"] - len(overlap)

    def test_conflicting_link_rejected(self):
        idmap = IdentityMap().link("person1", "alice@a")
        with pytest.raises(IdentityError):
            idmap.link("person2", "alice@a")

    def test_unqualified_identity_rejected(self):
        with pytest.raises(IdentityError):
            IdentityMap().link("p", "alice")

    def test_resolve_falls_back_to_qualified(self):
        idmap = IdentityMap().link("alice", "alice@a", "alice@b")
        assert idmap.resolve("a", "alice") == "alice"
        assert idmap.resolve("c", "alice") == "alice@c"
