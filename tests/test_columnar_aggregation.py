"""Columnar fast path, incremental storage/cloud, and conservation fixes.

Three families of tests:

1. property tests: the columnar fast path, the pure-Python oracle, and
   the incremental fold (in two batches) produce identical aggregate
   tables on randomized job/storage/cloud facts — including zero-walltime
   jobs, zero-length VM intervals, and None/0.0 quotas;
2. conservation: per-period sums equal raw-fact totals for every period,
   which the pre-fix engine violated for zero-length jobs;
3. regression tests for the three satellite bugfixes, each written to
   fail on the pre-PR code, plus the columnar-cache invalidation
   contract on ``warehouse.engine.Table``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aggregation import Aggregator
from repro.aggregation.columnar import group_reduce
from repro.aggregation.levels import (
    DEFAULT_JOBSIZE_LEVELS,
    DEFAULT_WALLTIME_LEVELS,
    FIG7_VM_MEMORY_LEVELS,
)
from repro.etl.cloudevents import create_cloud_realm
from repro.etl.star import create_jobs_star
from repro.etl.storagefs import create_storage_realm
from repro.timeutil import PERIODS, SECONDS_PER_HOUR, period_start, ts
from repro.warehouse import Schema

T0 = ts(2017, 1, 1)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_schema() -> Schema:
    s = Schema("modw")
    create_jobs_star(s)
    create_storage_realm(s)
    create_cloud_realm(s)
    return s


def insert_job(s, job_id, *, start, wall, cores=4, cpu_hours=None,
               resource_id=1, person_id=1, pi_id=1, app_id=1, queue_id=1,
               wait=600):
    s.table("fact_job").insert({
        "job_id": job_id, "resource_id": resource_id, "person_id": person_id,
        "pi_id": pi_id, "app_id": app_id, "queue_id": queue_id,
        "submit_ts": start - wait, "start_ts": start, "end_ts": start + wall,
        "walltime_s": wall, "wait_s": wait, "req_walltime_s": wall + 60,
        "nodes": max(1, cores // 16), "cores": cores,
        "cpu_hours": cores * wall / SECONDS_PER_HOUR if cpu_hours is None else cpu_hours,
        "node_hours": max(1, cores // 16) * wall / SECONDS_PER_HOUR,
        "xdsu": 1.2 * cores * wall / SECONDS_PER_HOUR,
        "state": "completed", "exit_code": 0,
    })


def insert_snapshot(s, snapshot_id, *, ts_, person_id, soft,
                    resource_id=1, filesystem="home", logical=10.0):
    s.table("fact_storage").insert({
        "snapshot_id": snapshot_id, "resource_id": resource_id,
        "filesystem": filesystem, "mountpoint": f"/{filesystem}",
        "resource_type": "gpfs", "person_id": person_id,
        "pi": "p", "system_username": f"u{person_id}", "ts": ts_,
        "file_count": 100, "logical_usage_gb": logical,
        "physical_usage_gb": logical * 0.9,
        "soft_quota_gb": soft,
        "hard_quota_gb": None if soft is None else soft * 1.5,
    })


def insert_interval(s, interval_id, *, vm_id, start, dur, state="running",
                    resource_id=1, vcpus=2, mem_gb=1.5):
    s.table("fact_vm_interval").insert({
        "interval_id": interval_id, "vm_id": vm_id,
        "resource_id": resource_id, "person_id": 1, "project": "astro",
        "os": "centos7", "submission_venue": "api",
        "instance_type": "m1.small", "state": state,
        "start_ts": start, "end_ts": start + dur,
        "vcpus": vcpus, "mem_gb": mem_gb, "disk_gb": 20.0,
    })


def insert_vm(s, vm_id, *, provision, terminate, resource_id=1,
              vcpus=2, mem_gb=1.5, n_state_changes=1):
    s.table("fact_vm").insert({
        "vm_id": vm_id, "resource_id": resource_id, "person_id": 1,
        "project": "astro", "os": "centos7", "submission_venue": "api",
        "provision_ts": provision, "terminate_ts": terminate,
        "first_instance_type": "m1.small", "last_instance_type": "m1.small",
        "last_vcpus": vcpus, "last_mem_gb": mem_gb, "last_disk_gb": 20.0,
        "wall_s": 0, "core_hours": 0.0, "reserved_core_hours": 0.0,
        "reserved_mem_gb_hours": 0.0, "reserved_disk_gb_hours": 0.0,
        "n_state_changes": n_state_changes, "n_resizes": 0,
        "running_s": 0, "stopped_s": 0, "paused_s": 0,
    })


def table_rows(s, name):
    if not s.has_table(name):
        return []
    rows = [tuple(sorted(r.items())) for r in s.table(name).rows()]
    # Sort on the non-float fields (period, dimension ids) only: float
    # aggregates may differ between implementations by ~1 ulp (summation
    # order), and letting them participate in the sort mispairs rows that
    # the per-field approx comparison below would accept.
    return sorted(
        rows,
        key=lambda r: [(k, v) for k, v in r if not isinstance(v, float)],
    )


def assert_tables_equal(got, want, label):
    assert len(got) == len(want), (
        f"{label}: {len(got)} rows != {len(want)} rows"
    )
    for rg, rw in zip(got, want):
        for (kg, vg), (kw, vw) in zip(rg, rw):
            assert kg == kw
            if isinstance(vg, float) or isinstance(vw, float):
                assert vg == pytest.approx(vw, rel=1e-9, abs=1e-9), (
                    f"{label}: {kg}: {vg} != {vw}"
                )
            else:
                assert vg == vw, f"{label}: {kg}: {vg!r} != {vw!r}"


# -- strategies ---------------------------------------------------------------

job_facts = st.lists(
    st.tuples(
        st.integers(0, 120 * 86400),           # start offset
        st.one_of(st.just(0), st.integers(1, 60 * 86400)),  # walltime
        st.integers(1, 300),                   # cores
        st.floats(0.0, 50.0),                  # cpu_hours for zero-wall jobs
        st.integers(1, 3),                     # resource
        st.integers(1, 4),                     # person
    ),
    max_size=30,
)

storage_facts = st.lists(
    st.tuples(
        st.integers(0, 90) ,                   # day offset
        st.integers(1, 5),                     # person
        st.sampled_from([None, 0.0, 50.0, 250.0]),  # soft quota
        st.sampled_from(["home", "scratch"]),
        st.floats(0.0, 120.0),                 # logical usage
    ),
    max_size=40,
)

cloud_facts = st.lists(
    st.tuples(
        st.integers(0, 60 * 86400),            # provision offset
        st.lists(                              # intervals: (dur, state)
            st.tuples(
                st.one_of(st.just(0), st.integers(1, 12 * 86400)),
                st.sampled_from(["running", "running", "stopped", "paused"]),
            ),
            min_size=1, max_size=4,
        ),
        st.booleans(),                         # terminated?
        st.sampled_from([0.5, 1.5, 3.0, 6.0, 12.0]),  # mem_gb
    ),
    max_size=10,
)


def populate(s, jobs, snaps, vms, *, job_id0=0, snap_id0=0, vm_id0=0, iv_id0=0):
    for i, (off, wall, cores, zero_cpu, rid, pid) in enumerate(jobs):
        insert_job(
            s, job_id0 + i + 1, start=T0 + off, wall=wall, cores=cores,
            cpu_hours=zero_cpu if wall == 0 else None,
            resource_id=rid, person_id=pid,
        )
    for i, (day, pid, soft, fs, logical) in enumerate(snaps):
        insert_snapshot(
            s, snap_id0 + i + 1, ts_=T0 + day * 86400, person_id=pid,
            soft=soft, filesystem=fs, logical=logical,
        )
    iv_id = iv_id0
    for i, (off, intervals, terminated, mem) in enumerate(vms):
        vm_id = vm_id0 + i + 1
        cursor = T0 + off
        for dur, state in intervals:
            iv_id += 1
            insert_interval(
                s, iv_id, vm_id=vm_id, start=cursor, dur=dur, state=state,
                mem_gb=mem,
            )
            cursor += dur
        insert_vm(
            s, vm_id, provision=T0 + off,
            terminate=cursor if terminated else None, mem_gb=mem,
            n_state_changes=len(intervals),
        )
    return iv_id


AGG_TABLES = ("agg_job_{p}", "agg_storage_{p}", "agg_cloud_{p}")


class TestColumnarOracleParity:
    @SETTINGS
    @given(jobs=job_facts, snaps=storage_facts, vms=cloud_facts,
           period=st.sampled_from(PERIODS))
    def test_columnar_matches_oracle(self, jobs, snaps, vms, period):
        s_fast, s_ref = build_schema(), build_schema()
        populate(s_fast, jobs, snaps, vms)
        populate(s_ref, jobs, snaps, vms)
        fast, ref = Aggregator(s_fast), Aggregator(s_ref)
        fast.aggregate_jobs(period)
        fast.aggregate_storage(period)
        fast.aggregate_cloud(period)
        ref.aggregate_jobs_oracle(period)
        ref.aggregate_storage_oracle(period)
        ref.aggregate_cloud_oracle(period)
        for pattern in AGG_TABLES:
            name = pattern.format(p=period)
            assert_tables_equal(
                table_rows(s_fast, name), table_rows(s_ref, name), name
            )

    @SETTINGS
    @given(jobs=job_facts, snaps=storage_facts, vms=cloud_facts,
           period=st.sampled_from(PERIODS))
    def test_incremental_matches_full_rebuild(self, jobs, snaps, vms, period):
        # fold in two batches; a full rebuild over the union must agree
        s_inc, s_full = build_schema(), build_schema()
        half_j, half_s, half_v = (
            len(jobs) // 2, len(snaps) // 2, len(vms) // 2
        )
        inc = Aggregator(s_inc)
        iv_n = populate(s_inc, jobs[:half_j], snaps[:half_s], vms[:half_v])
        inc.aggregate_all_incremental([period])
        populate(
            s_inc, jobs[half_j:], snaps[half_s:], vms[half_v:],
            job_id0=half_j, snap_id0=half_s, vm_id0=half_v, iv_id0=iv_n,
        )
        inc.aggregate_all_incremental([period])
        # folding again with no new facts must process nothing
        counts = inc.aggregate_all_incremental([period])
        assert all(v == 0 for v in counts.values())

        iv_n = populate(s_full, jobs[:half_j], snaps[:half_s], vms[:half_v])
        populate(
            s_full, jobs[half_j:], snaps[half_s:], vms[half_v:],
            job_id0=half_j, snap_id0=half_s, vm_id0=half_v, iv_id0=iv_n,
        )
        Aggregator(s_full).aggregate_all([period])
        for pattern in AGG_TABLES:
            name = pattern.format(p=period)
            assert_tables_equal(
                table_rows(s_inc, name), table_rows(s_full, name), name
            )

    def test_full_rebuild_resyncs_incremental_bookkeeping(self):
        s = build_schema()
        agg = Aggregator(s)
        insert_job(s, 1, start=T0, wall=3600)
        agg.aggregate_all_incremental(["month"])
        insert_job(s, 2, start=T0 + 86400, wall=7200)
        agg.aggregate_all(["month"])  # full rebuild covers job 2
        assert agg.aggregate_jobs_incremental("month") == 0
        assert agg.aggregate_storage_incremental("month") == 0
        assert agg.aggregate_cloud_incremental("month") == 0


class TestConservation:
    @SETTINGS
    @given(jobs=job_facts)
    def test_job_usage_conserved_every_period(self, jobs):
        """Per-period sums equal raw totals — the docstring's invariant."""
        s = build_schema()
        populate(s, jobs, [], [])
        raw = list(s.table("fact_job").rows())
        agg = Aggregator(s)
        for period in PERIODS:
            agg.aggregate_jobs(period)
            rows = list(s.table(f"agg_job_{period}").rows())
            for measure, raw_total in (
                ("cpu_hours", sum(j["cpu_hours"] for j in raw)),
                ("node_hours", sum(j["node_hours"] for j in raw)),
                ("xdsu", sum(j["xdsu"] for j in raw)),
                ("wall_hours",
                 sum(j["walltime_s"] for j in raw) / SECONDS_PER_HOUR),
                ("wait_hours",
                 sum(j["wait_s"] for j in raw) / SECONDS_PER_HOUR),
                ("n_jobs_ended", len(raw)),
                ("n_jobs_started", len(raw)),
            ):
                agg_total = sum(r[measure] for r in rows)
                assert agg_total == pytest.approx(raw_total, rel=1e-9, abs=1e-9), (
                    f"{period}/{measure}: {agg_total} != {raw_total}"
                )


class TestZeroWalltimeRegression:
    """Bugfix 1: zero-length jobs must not lose their usage."""

    def params(self):
        return dict(start=ts(2017, 2, 14, 12), wall=0, cpu_hours=7.5)

    def test_full_rebuild_keeps_usage(self):
        s = build_schema()
        insert_job(s, 1, **self.params())
        Aggregator(s).aggregate_jobs("month")
        rows = list(s.table("agg_job_month").rows())
        assert sum(r["cpu_hours"] for r in rows) == pytest.approx(7.5)
        # attributed to the period the job ended in
        (row,) = [r for r in rows if r["cpu_hours"] > 0]
        assert row["period_start"] == period_start("month", ts(2017, 2, 14, 12))

    def test_oracle_keeps_usage(self):
        s = build_schema()
        insert_job(s, 1, **self.params())
        Aggregator(s).aggregate_jobs_oracle("month")
        rows = list(s.table("agg_job_month").rows())
        assert sum(r["cpu_hours"] for r in rows) == pytest.approx(7.5)

    def test_incremental_keeps_usage(self):
        s = build_schema()
        insert_job(s, 1, **self.params())
        Aggregator(s).aggregate_jobs_incremental("month")
        rows = list(s.table("agg_job_month").rows())
        assert sum(r["cpu_hours"] for r in rows) == pytest.approx(7.5)


class TestZeroLengthIntervalRegression:
    """Bugfix 2: a VM starting and stopping in the same second is active."""

    def test_instant_vm_counts_as_active(self):
        s = build_schema()
        start = ts(2017, 3, 5, 9)
        insert_interval(s, 1, vm_id=42, start=start, dur=0, state="running")
        Aggregator(s).aggregate_cloud("month")
        rows = list(s.table("agg_cloud_month").rows())
        assert len(rows) == 1
        assert rows[0]["period_start"] == period_start("month", start)
        assert rows[0]["n_vms_active"] == 1
        assert rows[0]["wall_hours"] == 0.0

    def test_instant_vm_not_double_counted(self):
        # the same VM also has a spanning interval in the same period:
        # distinct count stays 1
        s = build_schema()
        start = ts(2017, 3, 5, 9)
        insert_interval(s, 1, vm_id=42, start=start, dur=0, state="running")
        insert_interval(s, 2, vm_id=42, start=start, dur=3600, state="running")
        Aggregator(s).aggregate_cloud("month")
        (row,) = s.table("agg_cloud_month").rows()
        assert row["n_vms_active"] == 1

    def test_oracle_and_incremental_agree(self):
        start = ts(2017, 3, 5, 9)
        results = []
        for mode in ("fast", "oracle", "incremental"):
            s = build_schema()
            insert_interval(s, 1, vm_id=7, start=start, dur=0, state="running")
            agg = Aggregator(s)
            getattr(agg, {
                "fast": "aggregate_cloud",
                "oracle": "aggregate_cloud_oracle",
                "incremental": "aggregate_cloud_incremental",
            }[mode])("month")
            results.append(table_rows(s, "agg_cloud_month"))
        assert results[0] == results[1] == results[2]


class TestQuotaTruthinessRegression:
    """Bugfix 3: a 0.0 quota is a sample; a NULL quota is not."""

    def test_zero_quota_counts_as_sample(self):
        s = build_schema()
        insert_snapshot(s, 1, ts_=T0, person_id=1, soft=0.0)
        Aggregator(s).aggregate_storage("month")
        (row,) = s.table("agg_storage_month").rows()
        assert row["n_quota_samples"] == 1
        assert row["sum_quota_utilization"] == 0.0

    def test_null_quota_not_a_sample(self):
        s = build_schema()
        insert_snapshot(s, 1, ts_=T0, person_id=1, soft=None)
        Aggregator(s).aggregate_storage("month")
        (row,) = s.table("agg_storage_month").rows()
        assert row["n_quota_samples"] == 0

    def test_mixed_quotas(self):
        s = build_schema()
        insert_snapshot(s, 1, ts_=T0, person_id=1, soft=None)
        insert_snapshot(s, 2, ts_=T0, person_id=2, soft=0.0)
        insert_snapshot(s, 3, ts_=T0, person_id=3, soft=100.0, logical=50.0)
        for method in ("aggregate_storage", "aggregate_storage_oracle"):
            getattr(Aggregator(s), method)("month")
            (row,) = s.table("agg_storage_month").rows()
            assert row["n_quota_samples"] == 2
            assert row["sum_quota_utilization"] == pytest.approx(0.5)


class TestColumnarCache:
    """Table.column_array contract: cached until any mutation."""

    def test_cache_reused_until_mutation(self):
        s = build_schema()
        insert_job(s, 1, start=T0, wall=3600)
        table = s.table("fact_job")
        v0 = table.data_version
        a = table.column_array("cpu_hours")
        assert table.column_array("cpu_hours") is a  # cached
        insert_job(s, 2, start=T0, wall=7200)
        assert table.data_version > v0
        b = table.column_array("cpu_hours")
        assert b is not a
        assert len(b) == 2

    def test_delete_truncate_and_upsert_invalidate(self):
        s = build_schema()
        insert_job(s, 1, start=T0, wall=3600)
        table = s.table("fact_job")
        table.column_array("job_id")
        v = table.data_version
        table.delete_where(lambda r: r["job_id"] == 1)
        assert table.data_version > v
        assert len(table.column_array("job_id")) == 0
        insert_job(s, 3, start=T0, wall=60)
        v = table.data_version
        table.truncate()
        assert table.data_version > v
        assert len(table.column_array("job_id")) == 0

    def test_null_and_string_columns(self):
        s = build_schema()
        insert_vm(s, 1, provision=T0, terminate=None)
        insert_vm(s, 2, provision=T0, terminate=T0 + 3600)
        table = s.table("fact_vm")
        term = table.column_array("terminate_ts")
        assert term.dtype == np.float64  # NULLs force float64 + NaN
        assert math.isnan(term[0]) and term[1] == T0 + 3600
        proj = table.column_array("project")
        assert proj.dtype == object
        assert list(proj) == ["astro", "astro"]


class TestCodesOfAgreement:
    @SETTINGS
    @given(values=st.lists(
        st.one_of(
            st.floats(-10.0, 10_000.0),
            st.just(float("nan")),
        ),
        max_size=50,
    ))
    def test_codes_match_level_of(self, values):
        for levels in (
            DEFAULT_WALLTIME_LEVELS, DEFAULT_JOBSIZE_LEVELS,
            FIG7_VM_MEMORY_LEVELS,
        ):
            codes = levels.codes_of(values)
            labels = [levels.coded_labels[c] for c in codes]
            assert labels == [levels.level_of(v) for v in values]


class TestGroupReduce:
    def test_matches_python_grouping(self):
        keys = [np.array([1, 2, 1, 2, 1]), np.array([0, 0, 1, 0, 0])]
        vals = {"x": np.array([1.0, 2.0, 3.0, 4.0, 5.0])}
        uniq, sums = group_reduce(keys, vals)
        got = {
            (int(uniq[0][i]), int(uniq[1][i])): sums["x"][i]
            for i in range(len(uniq[0]))
        }
        assert got == {(1, 0): 6.0, (1, 1): 3.0, (2, 0): 6.0}

    def test_empty(self):
        uniq, sums = group_reduce(
            [np.array([], dtype=np.int64)], {"x": np.array([])}
        )
        assert len(uniq[0]) == 0 and len(sums["x"]) == 0


class TestFederationIncremental:
    def test_hub_incremental_equals_full(self):
        from tests.conftest import build_two_site_federation

        hub, satellites, _, _ = build_two_site_federation()
        hub.aggregate_federation(["month"], incremental=True)
        inc_tables = {
            name: table_rows(schema, "agg_job_month")
            for name, schema in hub.federated_schemas().items()
        }
        hub.aggregate_federation(["month"])  # full rebuild
        for name, schema in hub.federated_schemas().items():
            assert_tables_equal(
                inc_tables[name], table_rows(schema, "agg_job_month"),
                f"{name}/agg_job_month",
            )
        # a second incremental pass after the rebuild folds nothing
        report = hub.aggregate_federation(["month"], incremental=True)
        for counts in report.values():
            assert all(v == 0 for v in counts.values())
