"""Observability plane: metrics history, SLO alerting, federated traces.

Covers the three layers PR 5 adds on top of the PR-4 telemetry:

- Prometheus exposition edge cases (label escaping, ±Inf/NaN) now
  round-trip through the parser;
- :class:`repro.obs.MetricsHistory` — the ring-buffer mini-TSDB the hub
  snapshots after every sync cycle — and its query vocabulary;
- :class:`repro.obs.AlertEngine` and the shipped SLO rule catalog,
  end-to-end through a fault-injected federation, ``GET /alerts`` and
  ``GET /health``;
- the cross-member trace acceptance scenario: one satellite ingest
  replicated both tight and loose assembles into a single federated
  trace, byte-identical across runs under a FakeClock.
"""

from __future__ import annotations

import math

import pytest

from repro.aggregation.levels import AggregationLevel, AggregationLevelSet
from repro.cli import main
from repro.core import (
    FaultPlan,
    FederationHub,
    FederationMonitor,
    LooseChannel,
    XdmodInstance,
    inject_apply_faults,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.obs import (
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertRule,
    FakeClock,
    FederatedTraceAssembler,
    MetricsHistory,
    MetricsRegistry,
    Observability,
    alert_rule,
    parse_prometheus_text,
)
from repro.timeutil import ts
from repro.ui import XdmodApi, render_sparkline


def make_job(job_id):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 5, 1), start_ts=ts(2017, 5, 1, 1),
        end_ts=ts(2017, 5, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource="r1",
    )


def fake_obs(name: str) -> Observability:
    return Observability(clock=FakeClock(auto_advance=0.001), name=name)


# -- exposition edge cases ----------------------------------------------------


class TestExpositionEdgeCases:
    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'back\\slash says "hi"\nand newline'
        registry.gauge("weird_rows", "escaping", ("path",)).labels(
            path=nasty
        ).set(1.5)
        text = registry.render_prometheus()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        assert "\n" not in text.split("weird_rows{", 1)[1].split("}")[0]
        parsed = parse_prometheus_text(text)
        assert parsed.value("weird_rows", path=nasty) == 1.5

    def test_special_values_render_and_parse(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("edge_rows", "specials", ("kind",))
        gauge.labels(kind="pinf").set(float("inf"))
        gauge.labels(kind="ninf").set(float("-inf"))
        gauge.labels(kind="nan").set(float("nan"))
        text = registry.render_prometheus()
        assert " +Inf" in text and " -Inf" in text and " NaN" in text
        parsed = parse_prometheus_text(text)
        assert parsed.value("edge_rows", kind="pinf") == float("inf")
        assert parsed.value("edge_rows", kind="ninf") == float("-inf")
        assert math.isnan(parsed.value("edge_rows", kind="nan"))

    def test_histogram_inf_bucket_round_trips(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(50.0)  # beyond every finite bucket: lands in +Inf
        text = registry.render_prometheus()
        parsed = parse_prometheus_text(text)
        assert parsed.value("lat_seconds_bucket", le="+Inf") == 2
        assert parsed.value("lat_seconds_bucket", le="0.1") == 1
        assert parsed.value("lat_seconds_count") == 2


# -- metrics history ----------------------------------------------------------


def build_history(**kwargs):
    clock = kwargs.pop("clock", None) or FakeClock(1000.0)
    registry = MetricsRegistry()
    return registry, MetricsHistory(registry, clock, **kwargs), clock


class TestMetricsHistory:
    def test_record_snapshots_every_scalar_child(self):
        registry, history, _ = build_history()
        registry.counter("pumps_total", "c", ("member",)).labels(
            member="site0"
        ).inc(3)
        registry.gauge("depth_rows", "g").set(7)
        registry.histogram("pump_seconds", "h").observe(0.25)
        assert history.record() == 4  # counter, gauge, hist _count + _sum
        assert history.last("pumps_total", member="site0") == 3.0
        assert history.last("depth_rows") == 7.0
        assert history.last("pump_seconds_count") == 1.0
        assert history.last("pump_seconds_sum") == 0.25
        assert history.last("no_such_rows") is None

    def test_partial_label_matching_sums_children(self):
        registry, history, _ = build_history()
        syncs = registry.counter("syncs_total", "c", ("member", "status"))
        syncs.labels(member="site0", status="applied").inc(3)
        syncs.labels(member="site0", status="failed").inc(1)
        syncs.labels(member="site1", status="applied").inc(2)
        history.record()
        assert history.last("syncs_total", member="site0") == 4.0
        assert history.last("syncs_total") == 6.0
        assert history.last("syncs_total", member="site0", status="failed") == 1.0
        assert history.last("syncs_total", member="site9") is None

    def test_increase_is_counter_reset_aware(self):
        registry, history, clock = build_history()
        gauge = registry.gauge("events_total", "free-setting counter stand-in")
        for value in (5, 9, 2, 3):  # 2 is a restart-from-zero reset
            gauge.set(value)
            history.record()
            clock.advance(10.0)
        # increase: (9-5) + 2 (reset adds the post-reset value) + (3-2)
        assert history.increase("events_total", 3600.0) == 7.0
        # delta keeps gauge semantics: last minus window baseline
        assert history.delta("events_total", 3600.0) == 3.0 - 5.0
        assert history.rate("events_total", 100.0) == pytest.approx(0.07)
        with pytest.raises(ValueError):
            history.rate("events_total", 0.0)

    def test_quantile_over_time(self):
        registry, history, clock = build_history()
        gauge = registry.gauge("lag_rows", "g")
        for value in (1, 2, 3, 4, 5):
            gauge.set(value)
            history.record()
            clock.advance(1.0)
        assert history.quantile_over_time(0.5, "lag_rows", 3600.0) == 3.0
        assert history.quantile_over_time(0.0, "lag_rows", 3600.0) == 1.0
        assert history.quantile_over_time(1.0, "lag_rows", 3600.0) == 5.0
        assert history.quantile_over_time(0.5, "lag_rows", 1.5) == 5.0
        assert history.quantile_over_time(0.5, "nope_rows", 60.0) is None
        with pytest.raises(ValueError):
            history.quantile_over_time(1.5, "lag_rows", 60.0)

    def test_single_sample_window_functions_return_none(self):
        registry, history, clock = build_history()
        gauge = registry.gauge("one_rows", "g")
        gauge.set(5)
        history.record()
        # one sample with nothing before the window: no computable step,
        # and "no data" must stay distinguishable from "no growth"
        assert history.increase("one_rows", 60.0) is None
        assert history.rate("one_rows", 60.0) is None
        clock.advance(10.0)
        history.record()
        assert history.increase("one_rows", 60.0) == 0.0
        assert history.rate("one_rows", 60.0) == 0.0
        # a window that slid past every sample is "no data" again
        clock.advance(100.0)
        assert history.increase("one_rows", 5.0) is None
        assert history.increase("never_rows", 60.0) is None

    def test_quantile_over_empty_window_is_none(self):
        registry, history, clock = build_history()
        gauge = registry.gauge("q_rows", "g")
        for value in (1, 2, 3):
            gauge.set(value)
            history.record()
            clock.advance(10.0)
        assert history.quantile_over_time(0.5, "q_rows", 3600.0) == 2.0
        # the window has slid past every sample: no data, not 0
        clock.advance(1000.0)
        assert history.quantile_over_time(0.5, "q_rows", 5.0) is None

    def test_counter_reset_survives_retention_downsampling(self):
        ladder = AggregationLevelSet(
            name="r", field="age_s", unit="seconds",
            levels=(
                AggregationLevel("raw", 0.0, 10.0),
                AggregationLevel("coarse", 10.0, 100.0),
            ),
        )
        registry = MetricsRegistry()
        history = MetricsHistory(registry, FakeClock(0.0), retention=ladder)
        gauge = registry.gauge("resets_total", "counter stand-in")
        # the counter climbs to 49, restarts from zero at t=50, climbs again
        for t in range(95):
            gauge.set(t if t < 50 else t - 50)
            history.record(now=float(t))
        history.compact(now=95.0)
        kept = history.samples("resets_total")
        # keep-newest-per-bucket downsampling must not erase the restart:
        # the kept series still shows a negative step across the
        # raw/coarse tier boundary
        values = [v for _, v in kept]
        assert any(b < a for a, b in zip(values, values[1:]))
        # increase() over the compacted series equals the reset-aware fold
        # a client would compute from samples() itself
        expected, prev = 0.0, None
        for _, v in kept:
            if prev is not None:
                expected += (v - prev) if v >= prev else v
            prev = v
        assert expected > 0
        assert history.increase("resets_total", 95.0, at=95.0) == expected

    def test_observe_feeds_explicit_series(self):
        registry, history, clock = build_history()
        for score in (0.9, 0.8, 0.2):
            history.observe("job_score_ratio", score, member="s0", app="namd")
            clock.advance(1.0)
        assert history.samples("job_score_ratio", app="namd") == [
            (1000.0, 0.9), (1001.0, 0.8), (1002.0, 0.2)
        ]
        assert history.last("job_score_ratio", member="s0") == 0.2
        assert history.quantile_over_time(
            0.5, "job_score_ratio", 3600.0, app="namd"
        ) == 0.8
        # same clock reading: the newer observation wins, as record() does
        history.observe("job_score_ratio", 0.5, now=1002.0, member="s0", app="namd")
        assert history.last("job_score_ratio") == 0.5
        # disabled history ignores observations entirely
        _, disabled, _ = build_history(enabled=False)
        disabled.observe("job_score_ratio", 1.0)
        assert disabled.samples("job_score_ratio") == []

    def test_age_tracks_value_changes_not_samples(self):
        registry, history, clock = build_history()
        gauge = registry.gauge("beat_rows", "g")
        gauge.set(5)
        history.record()
        clock.advance(10.0)
        history.record()  # same value re-recorded: not a change
        assert history.age_s("beat_rows") == 10.0
        gauge.set(7)
        clock.advance(5.0)
        history.record()
        assert history.age_s("beat_rows") == 0.0
        assert history.age_s("never_rows") is None

    def test_retention_ladder_downsamples_and_drops(self):
        ladder = AggregationLevelSet(
            name="r", field="age_s", unit="seconds",
            levels=(
                AggregationLevel("raw", 0.0, 10.0),
                AggregationLevel("coarse", 10.0, 100.0),
            ),
        )

        def run():
            registry = MetricsRegistry()
            history = MetricsHistory(
                registry, FakeClock(0.0), retention=ladder
            )
            gauge = registry.gauge("v_rows", "g")
            for t in range(120):
                gauge.set(t)
                history.record(now=float(t))
            history.compact(now=119.0)
            return history.samples("v_rows")

        samples = run()
        times = [t for t, _ in samples]
        # raw tier: every sample younger than 10 s survives
        assert [t for t in times if t > 109.0] == [float(t) for t in range(110, 120)]
        # beyond the ladder span (age >= 100 s) everything is dropped
        assert min(times) >= 20.0
        # coarse tier keeps one (the newest) sample per 10 s bucket
        coarse = [t for t in times if t <= 109.0]
        assert len(coarse) == len({int(t // 10) for t in coarse})
        # deterministic: an identical run compacts identically
        assert run() == samples

    def test_retention_must_start_at_age_zero(self):
        ladder = AggregationLevelSet(
            name="r", field="age_s", unit="seconds",
            levels=(AggregationLevel("late", 5.0, 10.0),),
        )
        with pytest.raises(ValueError):
            MetricsHistory(MetricsRegistry(), FakeClock(0.0), retention=ladder)

    def test_disabled_history_is_a_noop(self):
        registry, history, _ = build_history(enabled=False)
        registry.gauge("v_rows", "g").set(1)
        assert history.record() == 0
        assert history.samples("v_rows") == []
        assert history.last("v_rows") is None

    def test_max_samples_backstop_trims_oldest(self):
        registry, history, _ = build_history(max_samples=32)
        gauge = registry.gauge("v_rows", "g")
        for i in range(100):
            gauge.set(i)
            history.record(now=float(i))
        samples = history.samples("v_rows")
        assert len(samples) <= 32
        assert samples[-1] == (99.0, 99.0)

    def test_metrics_scrape_records_into_history(self):
        obs = fake_obs("api")
        obs.registry.counter("hits_total", "c").inc(2)
        api = XdmodApi({}, {}, obs=obs)
        status, ctype, body = api.handle_raw("/metrics", {})
        assert status == 200
        assert b"hits_total 2" in body
        assert obs.history.last("hits_total") == 2.0


# -- alert rules and engine ---------------------------------------------------


def build_engine(*rules: AlertRule):
    registry, history, clock = build_history()
    return registry, history, clock, AlertEngine(history, rules)


class TestAlertRules:
    def test_rule_validation(self):
        ok = dict(id="r", metric="m_rows", summary="s")
        with pytest.raises(ValueError):
            AlertRule(kind="sometimes", **ok)
        with pytest.raises(ValueError):
            AlertRule(kind="threshold", op="!=", **ok)
        with pytest.raises(ValueError):
            AlertRule(kind="burn_rate", func="median", **ok)
        with pytest.raises(ValueError):
            AlertRule(kind="threshold", for_count=0, **ok)

    def test_catalog_lookup_round_trips(self):
        assert alert_rule("member_stale").kind == "absence"
        ids = [r.id for r in DEFAULT_ALERT_RULES]
        assert len(set(ids)) == len(ids)
        for rule in DEFAULT_ALERT_RULES:
            assert alert_rule(rule.id) is rule

    def test_unknown_rule_id_raises_with_catalog(self):
        bogus = "lag_is_hot"  # via a variable: rule ids in alert_rule()
        # literals are what repolint's R7 checks
        with pytest.raises(KeyError) as err:
            alert_rule(bogus)
        assert "member_stale" in str(err.value)


class TestAlertEngine:
    def test_threshold_state_machine(self):
        rule_id = "lag_hot"
        rule = AlertRule(
            id=rule_id, kind="threshold", metric="replication_lag_rows",
            op=">=", threshold=10.0, for_count=2, summary="lag is hot",
        )
        registry, history, clock, engine = build_engine(rule)
        lag = registry.gauge("replication_lag_rows", "g", ("member",))

        def step(value):
            lag.labels(member="site0").set(value)
            history.record()
            clock.advance(1.0)
            engine.evaluate(["site0"])
            return engine.state_of(rule_id, "site0")

        assert step(20).status == "pending"  # first breach
        state = step(25)  # for_count=2 reached
        assert state.status == "firing" and state.active
        assert engine.firing()[0].rule.id == rule_id
        assert step(0).status == "resolved"
        assert step(0).status == "inactive"
        assert engine.firing() == []

    def test_for_count_one_fires_immediately(self):
        rule_id = "dlq_any"
        rule = AlertRule(
            id=rule_id, kind="threshold", metric="dlq_rows",
            op=">", threshold=0.0, for_count=1, summary="dlq non-empty",
        )
        registry, history, _, engine = build_engine(rule)
        registry.gauge("dlq_rows", "g", ("member",)).labels(member="m").set(1)
        history.record()
        engine.evaluate(["m"])
        assert engine.state_of(rule_id, "m").status == "firing"

    def test_absence_never_seen_is_healthy_then_fires_on_silence(self):
        rule_id = "quiet"
        rule = AlertRule(
            id=rule_id, kind="absence", metric="beats_total",
            max_age_s=60.0, for_count=1, summary="member quiet",
        )
        registry, history, clock, engine = build_engine(rule)
        engine.evaluate(["m"])
        state = engine.state_of(rule_id, "m")
        assert state.status == "inactive" and state.value is None
        beats = registry.counter("beats_total", "c", ("member",))
        beats.labels(member="m").inc()
        history.record()
        engine.evaluate(["m"])
        assert engine.state_of(rule_id, "m").status == "inactive"
        clock.advance(120.0)
        engine.evaluate(["m"])
        assert engine.state_of(rule_id, "m").status == "firing"
        beats.labels(member="m").inc()  # the member comes back
        history.record()
        engine.evaluate(["m"])
        assert engine.state_of(rule_id, "m").status == "resolved"

    def test_burn_rate_ratio_with_denominator(self):
        rule_id = "fail_ratio"
        rule = AlertRule(
            id=rule_id, kind="burn_rate", metric="ops_total",
            labels=(("status", "failed"),), denominator="ops_total",
            op=">=", threshold=0.5, window_s=600.0, for_count=1,
            summary="failure ratio high",
        )
        registry, history, clock, engine = build_engine(rule)
        ops = registry.counter("ops_total", "c", ("member", "status"))
        ops.labels(member="m", status="failed").inc(0)
        ops.labels(member="m", status="ok").inc(0)
        history.record()
        engine.evaluate(["m"])  # window holds no increase: ratio 0, healthy
        assert engine.state_of(rule_id, "m").status == "inactive"
        clock.advance(10.0)
        ops.labels(member="m", status="failed").inc(3)
        ops.labels(member="m", status="ok").inc(1)
        history.record()
        engine.evaluate(["m"])
        state = engine.state_of(rule_id, "m")
        assert state.status == "firing"
        assert state.value == 0.75

    def test_duplicate_rule_ids_rejected(self):
        rule = AlertRule(
            id="dup", kind="threshold", metric="m_rows", summary="s"
        )
        _, history, _ = build_history()
        with pytest.raises(ValueError):
            AlertEngine(history, [rule, rule])

    def test_default_catalog_is_quiet_on_a_fresh_hub(self):
        _, history, _ = build_history()
        engine = AlertEngine(history)
        engine.evaluate(["site0", "site1"])
        assert engine.active() == []

    def test_render_and_to_dict(self):
        rule_id = "dlq_any"
        rule = AlertRule(
            id=rule_id, kind="threshold", metric="dlq_rows",
            op=">", threshold=0.0, for_count=1, severity="page",
            summary="dead letters present",
        )
        registry, history, _, engine = build_engine(rule)
        registry.gauge("dlq_rows", "g", ("member",)).labels(member="m").set(2)
        history.record()
        engine.evaluate(["m"])
        text = engine.render()
        assert "1 firing / 1 tracked" in text
        assert f"FIRING {rule_id}[m]: dead letters present" in text
        payload = engine.to_dict()
        assert payload["firing"] == 1
        (alert,) = payload["alerts"]
        assert alert["rule"] == rule_id
        assert alert["severity"] == "page"
        assert alert["status"] == "firing"

    def test_render_before_any_evaluation(self):
        _, history, _ = build_history()
        assert "(no evaluations yet)" in AlertEngine(history).render()


# -- federated trace acceptance -----------------------------------------------


def build_traced_federation():
    """One satellite ingest replicated tight AND loose into one hub."""
    sat = XdmodInstance("site0", obs=fake_obs("site0"))
    with sat.obs.tracer.span("ingest_batch", site="site0"):
        ingest_jobs(sat.schema, [make_job(i) for i in range(8)])
    hub = FederationHub("hub", obs=fake_obs("hub"))
    hub.join(sat, mode="tight")  # initial sync pumps the whole backlog
    LooseChannel(
        sat.schema, hub.database, "fed_site0_loose", obs=hub.obs
    ).ship()
    return hub, sat


class TestFederatedTraceAcceptance:
    def test_single_ingest_assembles_one_federated_trace(self):
        hub, sat = build_traced_federation()
        assembler = FederatedTraceAssembler(hub.obs.tracer, sat.obs.tracer)
        federated = [
            tid for tid in assembler.trace_ids()
            if len(assembler.instances_of(tid)) > 1
        ]
        assert len(federated) == 1
        (tid,) = federated
        assert tid.startswith("site0:")
        assert assembler.instances_of(tid) == ["hub", "site0"]
        reparented = assembler.reparented_spans(tid)
        assert len(reparented) >= 4
        names = {s.name for s in reparented}
        assert "hub_apply" in names  # tight path joined the trace
        assert "loose_load" in names  # and so did the dump shipment
        for span in reparented:
            assert span.remote_parent.startswith("site0#")

    def test_render_marks_reparented_spans(self):
        hub, sat = build_traced_federation()
        assembler = FederatedTraceAssembler(hub.obs.tracer, sat.obs.tracer)
        (tid,) = [
            t for t in assembler.trace_ids()
            if len(assembler.instances_of(t)) > 1
        ]
        text = assembler.render(tid)
        assert text.splitlines()[0].endswith("across 2 instances)")
        assert "<= hub_apply" in text
        assert "<= loose_load" in text
        assert "(from site0#" in text

    def test_assembly_is_byte_identical_across_runs(self):
        def render_once():
            hub, sat = build_traced_federation()
            assembler = FederatedTraceAssembler(
                hub.obs.tracer, sat.obs.tracer
            )
            return assembler.render_all()

        assert render_once() == render_once()


# -- alerts end to end through a fault-injected federation --------------------


def build_faulted_federation(n_jobs=600):
    """A hub whose only member fails every apply, with a big backlog."""
    sat = XdmodInstance("site0", obs=fake_obs("site0"))
    ingest_jobs(sat.schema, [make_job(i) for i in range(n_jobs)])
    hub = FederationHub("hub", obs=fake_obs("hub"))
    hub.join(sat, mode="tight", initial_sync=False)
    inject_apply_faults(
        hub.member("site0").channel,
        FaultPlan(transient_rate=1.0, transient_burst=10**9),
    )
    return hub, FederationMonitor(hub)


class TestAlertsEndToEnd:
    def test_burn_rate_and_lag_alerts_fire_deterministically(self):
        hub, monitor = build_faulted_federation()
        for _ in range(3):
            hub.sync()
            monitor.evaluate_alerts()
        firing = {s.rule.id for s in monitor.alerts.firing()}
        assert "sync_failure_burn_rate" in firing
        assert "replication_lag_high" in firing
        ratio = monitor.alerts.state_of("sync_failure_burn_rate", "site0")
        assert ratio.value == 1.0  # every cycle failed

    def test_staleness_alert_fires_when_member_goes_quiet(self):
        hub, monitor = build_faulted_federation(n_jobs=10)
        hub.sync()
        monitor.evaluate_alerts()
        assert monitor.alerts.state_of("member_stale", "site0").status == "inactive"
        hub.obs.clock.advance(2000.0)  # past the 900 s staleness budget
        monitor.evaluate_alerts()
        state = monitor.alerts.state_of("member_stale", "site0")
        assert state.status == "firing"
        assert state.value > 900.0

    def test_firing_alerts_surface_in_rest_endpoints(self):
        hub, monitor = build_faulted_federation()
        for _ in range(3):
            hub.sync()
            monitor.evaluate_alerts()
        api = XdmodApi({}, {}, obs=hub.obs, monitor=monitor)

        status, payload = api.handle("/alerts", {})
        assert status == 200
        assert payload["firing"] >= 2
        firing = {
            a["rule"] for a in payload["alerts"] if a["status"] == "firing"
        }
        assert {"sync_failure_burn_rate", "replication_lag_high"} <= firing

        status, health = api.handle("/health", {})
        assert status == 200
        assert health["status"] == "degraded"
        assert "sync_failure_burn_rate" in {
            a["rule"] for a in health["alerts_firing"]
        }

    def test_alerts_endpoint_404_without_monitor(self):
        api = XdmodApi({}, {})
        status, payload = api.handle("/alerts", {})
        assert status == 404
        assert "monitor" in payload["error"]

    def test_monitor_render_shows_history_and_alerts(self):
        hub, monitor = build_faulted_federation()
        for _ in range(3):
            hub.sync()
            monitor.evaluate_alerts()
        text = monitor.render()
        assert "history (oldest -> newest):" in text
        assert "lag " in text
        assert "alerts: 2 firing" in text
        assert "sync_failure_burn_rate[site0]" in text


# -- sparklines ---------------------------------------------------------------


class TestSparkline:
    def test_empty_and_flat(self):
        assert render_sparkline([]) == ""
        assert render_sparkline([0.0, 0.0, 0.0]) == "   "

    def test_scales_to_max(self):
        spark = render_sparkline([0.0, 5.0, 10.0])
        assert len(spark) == 3
        assert spark[0] == " " and spark[-1] == "@"
        assert spark.isascii()

    def test_downsamples_to_width(self):
        spark = render_sparkline([float(v) for v in range(100)], width=16)
        assert len(spark) == 16
        assert spark[-1] == "@"


# -- CLI ----------------------------------------------------------------------


class TestObsPlaneCli:
    def test_trace_missing_file_is_operator_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "trace", "--trace-file", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_alerts_clean_federation_exits_zero(self, capsys):
        assert main(["obs", "alerts"]) == 0
        captured = capsys.readouterr()
        assert "0 firing" in captured.out
        assert captured.err == ""

    def test_alerts_exit_nonzero_when_firing(self, capsys):
        assert main(["obs", "alerts", "--inject-faults"]) == 1
        captured = capsys.readouterr()
        assert "sync_failure_burn_rate" in captured.out
        assert "firing" in captured.err

    def test_federated_trace_renders_cross_instance_trees(self, capsys):
        assert main(["obs", "trace", "--federated"]) == 0
        out = capsys.readouterr().out
        assert "across 2 instances)" in out
        assert "<= hub_apply" in out
        assert "<= loose_load" in out
