"""Aggregate-table builder: conservation, apportioning, re-aggregation."""

from __future__ import annotations

import pytest

from repro.aggregation import (
    AggregationConfig,
    Aggregator,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_B,
)
from repro.etl import ParsedJob, ingest_jobs, ingest_cloud_events
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.warehouse import Database

H = SECONDS_PER_HOUR


def job(job_id, start, end, *, cores=4, resource="r1", user="u1") -> ParsedJob:
    return ParsedJob(
        job_id=job_id, user=user, pi="pi", queue="normal",
        application="app", submit_ts=start - H, start_ts=start, end_ts=end,
        nodes=1, cores=cores, req_walltime_s=10 * H, state="COMPLETED",
        exit_code=0, resource=resource,
    )


@pytest.fixture()
def schema():
    return Database().create_schema("modw")


class TestJobAggregation:
    def test_month_boundary_apportioning(self, schema):
        """A job spanning Jan|Feb splits its usage by overlap."""
        start = ts(2017, 1, 31, 20)
        end = ts(2017, 2, 1, 4)  # 8h: 4h in Jan, 4h in Feb
        ingest_jobs(schema, [job(1, start, end, cores=10)])
        agg = Aggregator(schema)
        agg.aggregate_jobs("month")
        rows = {r["period_label"]: r for r in schema.table("agg_job_month").rows()}
        assert rows["2017-01"]["cpu_hours"] == pytest.approx(40.0)
        assert rows["2017-02"]["cpu_hours"] == pytest.approx(40.0)
        # the job *ended* in February
        assert rows["2017-02"]["n_jobs_ended"] == 1
        assert rows["2017-01"]["n_jobs_ended"] == 0
        # and *started* in January, where its wait attributes
        assert rows["2017-01"]["n_jobs_started"] == 1
        assert rows["2017-01"]["wait_hours"] == pytest.approx(1.0)

    def test_cpu_hours_conserved(self, aggregated_instance):
        schema = aggregated_instance.schema
        raw = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
        for period in ("day", "month"):
            agg = sum(
                r["cpu_hours"]
                for r in schema.table(f"agg_job_{period}").rows()
            )
            assert agg == pytest.approx(raw, rel=1e-9)

    def test_job_counts_conserved(self, aggregated_instance):
        schema = aggregated_instance.schema
        n_raw = len(schema.table("fact_job"))
        n_agg = sum(
            r["n_jobs_ended"] for r in schema.table("agg_job_month").rows()
        )
        assert n_agg == n_raw

    def test_walltime_levels_used(self, schema):
        ingest_jobs(schema, [job(1, ts(2017, 1, 2), ts(2017, 1, 2, 15))])
        Aggregator(
            schema, AggregationConfig(walltime_levels=TABLE1_INSTANCE_B)
        ).aggregate_jobs("month")
        row = next(schema.table("agg_job_month").rows())
        assert row["walltime_level"] == "10-20 hours"

    def test_reaggregation_rebins_without_changing_totals(self, schema):
        ingest_jobs(schema, [
            job(1, ts(2017, 1, 2), ts(2017, 1, 2, 15)),
            job(2, ts(2017, 1, 3), ts(2017, 1, 3, 2)),
        ])
        agg = Aggregator(schema, AggregationConfig(walltime_levels=TABLE1_INSTANCE_B))
        agg.aggregate_all(["month"])
        total_before = sum(
            r["cpu_hours"] for r in schema.table("agg_job_month").rows()
        )
        levels_before = {
            r["walltime_level"] for r in schema.table("agg_job_month").rows()
        }
        agg.reaggregate(
            AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB), ["month"]
        )
        total_after = sum(
            r["cpu_hours"] for r in schema.table("agg_job_month").rows()
        )
        levels_after = {
            r["walltime_level"] for r in schema.table("agg_job_month").rows()
        }
        assert total_after == pytest.approx(total_before)
        assert levels_before != levels_after

    def test_zero_walltime_jobs_contribute_no_usage(self, schema):
        cancelled = ParsedJob(
            job_id=1, user="u", pi="p", queue="normal", application="a",
            submit_ts=ts(2017, 1, 5), start_ts=ts(2017, 1, 5),
            end_ts=ts(2017, 1, 5), nodes=0, cores=4, req_walltime_s=H,
            state="CANCELLED", exit_code=0, resource="r1",
        )
        ingest_jobs(schema, [cancelled])
        Aggregator(schema).aggregate_jobs("month")
        row = next(schema.table("agg_job_month").rows())
        assert row["cpu_hours"] == 0.0
        assert row["n_jobs_ended"] == 1

    def test_empty_schema_aggregates_to_empty_tables(self, schema):
        out = Aggregator(schema).aggregate_all(["month"])
        assert out == {
            "agg_job_month": 0, "agg_storage_month": 0, "agg_cloud_month": 0,
        }


class TestCloudAggregation:
    def _events(self):
        base = ts(2017, 1, 31, 22)
        return [
            {"event_id": 1, "vm_id": 1, "event_type": "provision", "ts": base,
             "instance_type": "c2", "vcpus": 2, "mem_gb": 2.0, "disk_gb": 10.0,
             "user": "u", "project": "p", "resource": "cloud"},
            {"event_id": 2, "vm_id": 1, "event_type": "start", "ts": base,
             "instance_type": "c2", "vcpus": 2, "mem_gb": 2.0, "disk_gb": 10.0,
             "user": "u", "project": "p", "resource": "cloud"},
            {"event_id": 3, "vm_id": 1, "event_type": "terminate",
             "ts": base + 4 * H,  # 2h in Jan, 2h in Feb
             "instance_type": "c2", "vcpus": 2, "mem_gb": 2.0, "disk_gb": 10.0,
             "user": "u", "project": "p", "resource": "cloud"},
        ]

    def test_core_hours_apportioned_across_months(self, schema):
        ingest_cloud_events(schema, self._events())
        Aggregator(schema).aggregate_cloud("month")
        rows = {r["period_label"]: r for r in schema.table("agg_cloud_month").rows()}
        assert rows["2017-01"]["core_hours"] == pytest.approx(4.0)
        assert rows["2017-02"]["core_hours"] == pytest.approx(4.0)
        assert rows["2017-01"]["memory_level"] == "2-4 GB"
        # VM active in both months
        assert rows["2017-01"]["n_vms_active"] == 1
        assert rows["2017-02"]["n_vms_active"] == 1
        # started in Jan, ended in Feb
        assert rows["2017-01"]["n_vms_started"] == 1
        assert rows["2017-02"]["n_vms_ended"] == 1

    def test_cloud_core_hours_conserved(self, schema, cloud_events):
        ingest_cloud_events(schema, cloud_events)
        Aggregator(schema).aggregate_cloud("month")
        raw = sum(r["core_hours"] for r in schema.table("fact_vm").rows())
        agg = sum(r["core_hours"] for r in schema.table("agg_cloud_month").rows())
        assert agg == pytest.approx(raw, rel=1e-9)


class TestStorageAggregation:
    def test_gauge_semantics(self, schema):
        """Two snapshots in a month average; two users at one ts sum."""
        docs = []
        for i, t in enumerate((ts(2017, 1, 7), ts(2017, 1, 21))):
            for user, gb in (("u1", 100.0), ("u2", 50.0)):
                docs.append({
                    "resource": "store", "filesystem": "fs1",
                    "mountpoint": "/fs1", "resource_type": "persistent",
                    "user": user, "ts": t, "file_count": 1000 * (i + 1),
                    "logical_usage_gb": gb + 10 * i,
                    "physical_usage_gb": gb + 10 * i,
                    "soft_quota_gb": 200.0, "hard_quota_gb": 400.0,
                })
        from repro.etl import ingest_storage_snapshots

        ingest_storage_snapshots(schema, docs)
        Aggregator(schema).aggregate_storage("month")
        row = next(schema.table("agg_storage_month").rows())
        # per-ts totals: 150, 170 -> monthly mean 160
        assert row["avg_logical_gb"] == pytest.approx(160.0)
        # per-ts file totals: 2000, 4000 -> mean 3000
        assert row["avg_file_count"] == pytest.approx(3000.0)
        assert row["user_count"] == 2
        assert row["n_snapshots"] == 2

    def test_storage_from_simulator(self, schema, storage_docs):
        from repro.etl import ingest_storage_snapshots

        ingest_storage_snapshots(schema, storage_docs)
        Aggregator(schema).aggregate_storage("month")
        rows = list(schema.table("agg_storage_month").rows())
        assert rows
        for row in rows:
            assert row["avg_physical_gb"] >= row["avg_logical_gb"]
