"""Cloud realm ETL: sessionization of VM lifecycle events."""

from __future__ import annotations

import pytest

from repro.etl import JsonSchemaError, ingest_cloud_events
from repro.simulators import vm_sessions
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.warehouse import Database

T0 = ts(2017, 1, 1)


def event(event_id, vm_id, etype, t, *, vcpus=2, mem=2.0, disk=20.0,
          itype="c2.small", user="u1", project="p1", resource="cloud"):
    return {
        "event_id": event_id, "vm_id": vm_id, "event_type": etype,
        "ts": t, "instance_type": itype, "vcpus": vcpus, "mem_gb": mem,
        "disk_gb": disk, "user": user, "project": project,
        "resource": resource,
    }


@pytest.fixture()
def schema():
    return Database().create_schema("modw")


class TestSessionization:
    def test_simple_lifecycle(self, schema):
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0 + 100),
            event(3, 1, "terminate", T0 + 100 + 4 * SECONDS_PER_HOUR),
        ]
        vms, rejected = ingest_cloud_events(schema, events)
        assert (vms, rejected) == (1, 0)
        vm = next(schema.table("fact_vm").rows())
        assert vm["wall_s"] == 4 * SECONDS_PER_HOUR
        assert vm["core_hours"] == pytest.approx(8.0)  # 2 vcpus x 4h
        assert vm["stopped_s"] == 100  # provision -> start gap
        assert vm["terminate_ts"] == events[-1]["ts"]

    def test_vm_walltime_differs_from_usage(self, schema):
        """The paper's caveat: a VM can sit running long after its job."""
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            event(3, 1, "stop", T0 + SECONDS_PER_HOUR),
            event(4, 1, "terminate", T0 + 10 * SECONDS_PER_HOUR),
        ]
        ingest_cloud_events(schema, events)
        vm = next(schema.table("fact_vm").rows())
        assert vm["wall_s"] == SECONDS_PER_HOUR
        reserved_span = vm["terminate_ts"] - vm["provision_ts"]
        assert reserved_span == 10 * SECONDS_PER_HOUR
        assert vm["reserved_core_hours"] == pytest.approx(2 * 10.0)

    def test_pause_does_not_accumulate_wall(self, schema):
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            event(3, 1, "pause", T0 + SECONDS_PER_HOUR),
            event(4, 1, "unpause", T0 + 3 * SECONDS_PER_HOUR),
            event(5, 1, "terminate", T0 + 4 * SECONDS_PER_HOUR),
        ]
        ingest_cloud_events(schema, events)
        vm = next(schema.table("fact_vm").rows())
        assert vm["wall_s"] == 2 * SECONDS_PER_HOUR
        assert vm["paused_s"] == 2 * SECONDS_PER_HOUR

    def test_resize_changes_core_accounting(self, schema):
        """Configuration 'can even be changed during the life of the VM'."""
        events = [
            event(1, 1, "provision", T0, vcpus=2),
            event(2, 1, "start", T0, vcpus=2),
            event(3, 1, "resize", T0 + SECONDS_PER_HOUR, vcpus=8,
                  mem=8.0, itype="c8.large"),
            event(4, 1, "terminate", T0 + 2 * SECONDS_PER_HOUR, vcpus=8),
        ]
        ingest_cloud_events(schema, events)
        vm = next(schema.table("fact_vm").rows())
        # 1h at 2 cores + 1h at 8 cores
        assert vm["core_hours"] == pytest.approx(2.0 + 8.0)
        assert vm["n_resizes"] == 1
        assert vm["first_instance_type"] == "c2.small"
        assert vm["last_instance_type"] == "c8.large"
        intervals = list(schema.table("fact_vm_interval").rows())
        running = [i for i in intervals if i["state"] == "running"]
        assert sorted(i["vcpus"] for i in running) == [2, 8]

    def test_state_change_count(self, schema):
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            event(3, 1, "stop", T0 + 3600),
            event(4, 1, "start", T0 + 7200),
            event(5, 1, "terminate", T0 + 10800),
        ]
        ingest_cloud_events(schema, events)
        vm = next(schema.table("fact_vm").rows())
        assert vm["n_state_changes"] == 3  # start, stop, start

    def test_open_vm_clamped_to_feed_horizon(self, schema):
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            # no terminate; another VM's event sets the horizon
            event(3, 2, "provision", T0 + 6 * SECONDS_PER_HOUR),
        ]
        ingest_cloud_events(schema, events)
        vm = schema.table("fact_vm").get(
            (next(schema.table("dim_resource").rows())["resource_id"], 1)
        )
        assert vm["terminate_ts"] is None
        assert vm["wall_s"] == 6 * SECONDS_PER_HOUR

    def test_reingest_replaces_vm(self, schema):
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            event(3, 1, "terminate", T0 + 3600),
        ]
        ingest_cloud_events(schema, events)
        ingest_cloud_events(schema, events)  # cumulative feed re-dump
        assert len(schema.table("fact_vm")) == 1
        running = [
            i for i in schema.table("fact_vm_interval").rows()
            if i["state"] == "running"
        ]
        assert len(running) == 1

    def test_invalid_event_strict_vs_lenient(self, schema):
        bad = event(1, 1, "explode", T0)
        with pytest.raises(JsonSchemaError):
            ingest_cloud_events(schema, [bad])
        vms, rejected = ingest_cloud_events(schema, [bad], strict=False)
        assert (vms, rejected) == (0, 1)


class TestSimulatedFeed:
    def test_simulated_lifecycles_are_well_formed(self, cloud_events):
        sessions = vm_sessions(cloud_events)
        assert len(sessions) > 20
        for events in sessions.values():
            assert events[0]["event_type"] == "provision"
            assert events[-1]["event_type"] == "terminate"
            timestamps = [e["ts"] for e in events]
            assert timestamps == sorted(timestamps)

    def test_ingest_full_feed(self, schema, cloud_events):
        vms, rejected = ingest_cloud_events(schema, cloud_events)
        assert rejected == 0
        assert vms == len(vm_sessions(cloud_events))
        for vm in schema.table("fact_vm").rows():
            span = vm["terminate_ts"] - vm["provision_ts"]
            assert 0 <= vm["wall_s"] <= span
            assert vm["running_s"] + vm["stopped_s"] + vm["paused_s"] <= span + 1
