"""Property-based suites for the system-level invariants (DESIGN.md §5).

The binlog replay properties live in test_warehouse_binlog; here we cover
the federation- and aggregation-level invariants over randomized inputs:

1. aggregation conserves additive measures for ANY job population and ANY
   valid level configuration;
2. fan-in equivalence: however jobs are partitioned across satellites, the
   federated total equals the unpartitioned total;
3. replication fidelity holds for arbitrary job populations;
4. XD SU standardization is invariant to which resource reports equivalent
   work;
5. cloud sessionization conserves time: per-state seconds partition the
   VM's lifetime.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aggregation import (
    AggregationConfig,
    AggregationLevel,
    AggregationLevelSet,
    Aggregator,
)
from repro.core import FederationHub, XdmodInstance, check_federation
from repro.etl import ParsedJob, ingest_jobs, ingest_cloud_events
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.warehouse import Database

T0 = ts(2017, 1, 1)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategies ---------------------------------------------------------------

@st.composite
def parsed_jobs(draw, max_jobs=40):
    n = draw(st.integers(min_value=0, max_value=max_jobs))
    jobs = []
    for i in range(n):
        start_offset = draw(st.integers(0, 300 * 24 * 3600))
        duration = draw(st.integers(0, 80 * 3600))
        cores = draw(st.integers(1, 512))
        start = T0 + start_offset
        jobs.append(
            ParsedJob(
                job_id=i + 1,
                user=f"u{draw(st.integers(0, 5))}",
                pi=f"p{draw(st.integers(0, 2))}",
                queue=draw(st.sampled_from(["normal", "debug"])),
                application=draw(st.sampled_from(["a", "b", "c"])),
                submit_ts=start - draw(st.integers(0, 7200)),
                start_ts=start,
                end_ts=start + duration,
                nodes=max(1, cores // 16),
                cores=cores,
                req_walltime_s=duration + 60,
                state=draw(st.sampled_from(["COMPLETED", "FAILED", "TIMEOUT"])),
                exit_code=0,
                resource=draw(st.sampled_from(["res_x", "res_y"])),
            )
        )
    return jobs


@st.composite
def level_sets(draw):
    """A random, valid, contiguous wall-time level configuration."""
    n_bins = draw(st.integers(1, 6))
    edges = sorted(
        draw(
            st.lists(
                st.integers(0, 100 * SECONDS_PER_HOUR),
                min_size=n_bins + 1,
                max_size=n_bins + 1,
                unique=True,
            )
        )
    )
    levels = tuple(
        AggregationLevel(f"bin{i}", lo, hi)
        for i, (lo, hi) in enumerate(zip(edges, edges[1:]))
    )
    return AggregationLevelSet("random", "walltime_s", "s", levels)


# -- properties ----------------------------------------------------------------

@SETTINGS
@given(jobs=parsed_jobs(), levels=level_sets(), period=st.sampled_from(
    ["day", "month", "quarter", "year"]))
def test_aggregation_conserves_measures(jobs, levels, period):
    """Invariant 2: totals survive any binning at any period."""
    schema = Database().create_schema("modw")
    ingest_jobs(schema, jobs)
    Aggregator(
        schema, AggregationConfig(walltime_levels=levels)
    ).aggregate_jobs(period)
    agg = schema.table(f"agg_job_{period}")
    raw_cpu = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
    raw_jobs = len(schema.table("fact_job"))
    agg_cpu = sum(r["cpu_hours"] for r in agg.rows())
    agg_jobs = sum(r["n_jobs_ended"] for r in agg.rows())
    assert agg_cpu == pytest.approx(raw_cpu, rel=1e-9, abs=1e-9)
    assert agg_jobs == raw_jobs


@SETTINGS
@given(jobs=parsed_jobs(max_jobs=30), split=st.lists(
    st.integers(0, 2), min_size=30, max_size=30))
def test_fan_in_equivalence_under_any_partition(jobs, split):
    """Invariant 3: partition jobs across up to 3 satellites; federated
    totals equal the whole."""
    partitions: dict[int, list[ParsedJob]] = {0: [], 1: [], 2: []}
    for i, job in enumerate(jobs):
        partitions[split[i]].append(job)
    hub = FederationHub("hub")
    for idx, batch in partitions.items():
        satellite = XdmodInstance(f"sat{idx}")
        ingest_jobs(satellite.schema, batch)
        hub.join(satellite)
    check = check_federation(hub, strict=True)
    assert check.ok
    totals = check.federation_totals()
    assert totals["n_jobs"] == len(jobs)
    assert totals["cpu_hours"] == pytest.approx(
        sum(j.cores * max(0, j.end_ts - j.start_ts) / 3600 for j in jobs),
        rel=1e-9, abs=1e-9,
    )


@SETTINGS
@given(jobs=parsed_jobs())
def test_replication_fidelity_any_population(jobs):
    """Invariant 1: replicated tables are checksum-identical."""
    satellite = XdmodInstance("sat")
    ingest_jobs(satellite.schema, jobs)
    hub = FederationHub("hub")
    hub.join(satellite)
    fed = hub.database.schema("fed_sat")
    for table_name in fed.table_names():
        assert (
            fed.table(table_name).checksum()
            == satellite.schema.table(table_name).checksum()
        )


@given(
    factor_a=st.floats(0.1, 20.0, allow_nan=False),
    factor_b=st.floats(0.1, 20.0, allow_nan=False),
    work=st.floats(0.0, 1e6, allow_nan=False),
)
def test_xdsu_invariance(factor_a, factor_b, work):
    """Invariant 5: equivalent work costs equal XD SUs anywhere."""
    from repro.simulators import ConversionTable

    table = ConversionTable({"a": factor_a, "b": factor_b})
    charge_a = table.to_xdsu("a", work / factor_a)
    charge_b = table.to_xdsu("b", work / factor_b)
    assert charge_a == pytest.approx(charge_b, rel=1e-9, abs=1e-9)


@st.composite
def vm_event_streams(draw):
    """A random but state-machine-valid single-VM event stream."""
    t = T0
    vcpus = draw(st.sampled_from([1, 2, 4, 8]))
    mem = float(vcpus)
    base = {
        "vm_id": 1, "instance_type": f"c{vcpus}", "vcpus": vcpus,
        "mem_gb": mem, "disk_gb": 10.0, "user": "u", "project": "p",
        "resource": "cloud",
    }
    events = [dict(base, event_id=1, event_type="provision", ts=t)]
    state = "provisioned"
    eid = 2
    for _ in range(draw(st.integers(0, 12))):
        t += draw(st.integers(60, 86400))
        if state in ("provisioned", "stopped"):
            etype = "start"
            state = "running"
        elif state == "running":
            etype = draw(st.sampled_from(["stop", "pause", "resize"]))
            state = {"stop": "stopped", "pause": "paused",
                     "resize": "running"}[etype]
        else:  # paused
            etype = "unpause"
            state = "running"
        events.append(dict(base, event_id=eid, event_type=etype, ts=t))
        eid += 1
    t += draw(st.integers(60, 86400))
    events.append(dict(base, event_id=eid, event_type="terminate", ts=t))
    return events


@SETTINGS
@given(events=vm_event_streams())
def test_cloud_sessionization_conserves_time(events):
    """Invariant 8: running+stopped+paused partition the VM lifetime, and
    wall seconds never exceed it."""
    schema = Database().create_schema("modw")
    ingest_cloud_events(schema, events)
    vm = next(schema.table("fact_vm").rows())
    lifetime = vm["terminate_ts"] - vm["provision_ts"]
    accounted = vm["running_s"] + vm["stopped_s"] + vm["paused_s"]
    assert accounted == lifetime
    assert 0 <= vm["wall_s"] <= lifetime
    # interval rows partition the same span
    interval_total = sum(
        r["end_ts"] - r["start_ts"]
        for r in schema.table("fact_vm_interval").rows()
    )
    assert interval_total == lifetime


@st.composite
def storage_snapshots(draw):
    """Random per-user snapshots over a handful of sample times."""
    times = draw(st.lists(
        st.integers(T0, T0 + 20 * 86400), min_size=1, max_size=4, unique=True,
    ))
    users = [f"u{i}" for i in range(draw(st.integers(1, 4)))]
    docs = []
    for t in times:
        for user in users:
            docs.append({
                "resource": "store", "filesystem": "fs1",
                "mountpoint": "/fs1", "resource_type": "persistent",
                "user": user, "ts": t,
                "file_count": draw(st.integers(0, 10**6)),
                "logical_usage_gb": draw(
                    st.floats(0, 1e4, allow_nan=False)
                ),
                "physical_usage_gb": draw(
                    st.floats(0, 1e4, allow_nan=False)
                ),
                "soft_quota_gb": 100.0, "hard_quota_gb": 200.0,
            })
    return docs


@SETTINGS
@given(docs=storage_snapshots())
def test_storage_gauge_semantics_property(docs):
    """Gauge invariant: the monthly figure is the mean over sample times of
    the per-time sum across users — never a sum over samples."""
    from collections import defaultdict

    from repro.etl import ingest_storage_snapshots

    schema = Database().create_schema("modw")
    ingest_storage_snapshots(schema, docs)
    Aggregator(schema).aggregate_storage("month")

    from repro.timeutil import month_start

    expected: dict[int, dict[int, float]] = defaultdict(lambda: defaultdict(float))
    for doc in docs:
        expected[month_start(doc["ts"])][doc["ts"]] += doc["physical_usage_gb"]
    for row in schema.table("agg_storage_month").rows():
        per_ts = expected[row["period_start"]]
        mean_of_sums = sum(per_ts.values()) / len(per_ts)
        assert row["avg_physical_gb"] == pytest.approx(mean_of_sums, rel=1e-9)
