"""Federation orchestration: membership, sync, hub aggregation."""

from __future__ import annotations

import pytest

from repro.aggregation import AggregationConfig, TABLE1_FEDERATION_HUB
from repro.core import (
    FED_SCHEMA_PREFIX,
    FederationHub,
    MembershipError,
    VersionMismatchError,
    XdmodInstance,
)
from repro.etl import ParsedJob
from repro.timeutil import ts
from tests.conftest import build_two_site_federation


def make_job(job_id, resource="extra"):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 1, 20), start_ts=ts(2017, 1, 20, 1),
        end_ts=ts(2017, 1, 20, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource=resource,
    )


class TestMembership:
    def test_version_requirement(self):
        hub = FederationHub("hub")
        old = XdmodInstance("legacy", version="6.5.0")
        with pytest.raises(VersionMismatchError):
            hub.join(old)

    def test_duplicate_member_rejected(self, federation):
        hub, satellites, _, _ = federation
        with pytest.raises(MembershipError):
            hub.join(satellites["site0"])

    def test_hub_cannot_join_itself(self):
        hub = FederationHub("hub")
        with pytest.raises(MembershipError):
            hub.join(hub)

    def test_unknown_mode_rejected(self):
        hub = FederationHub("hub")
        with pytest.raises(MembershipError):
            hub.join(XdmodInstance("x"), mode="psychic")

    def test_fed_schema_naming(self, federation):
        hub, _, _, _ = federation
        assert hub.database.has_schema(FED_SCHEMA_PREFIX + "site0")
        assert hub.database.has_schema(FED_SCHEMA_PREFIX + "site1")

    def test_leave_keeps_or_drops_data(self, federation):
        hub, _, _, _ = federation
        hub.leave("site0")
        assert hub.database.has_schema("fed_site0")  # data retained
        with pytest.raises(MembershipError):
            hub.member("site0")
        hub.leave("site1", drop_data=True)
        assert not hub.database.has_schema("fed_site1")

    def test_members_sorted(self, federation):
        hub, _, _, _ = federation
        assert [m.name for m in hub.members] == ["site0", "site1"]


class TestSync:
    def test_initial_join_replicates_history(self, federation):
        hub, satellites, _, _ = federation
        for name, satellite in satellites.items():
            hub_fact = hub.database.schema(f"fed_{name}").table("fact_job")
            assert hub_fact.checksum() == (
                satellite.schema.table("fact_job").checksum()
            )

    def test_lag_and_sync(self, federation):
        hub, satellites, _, _ = federation
        from repro.etl import ingest_jobs

        ingest_jobs(satellites["site0"].schema, [make_job(9001)])
        assert hub.lag()["site0"] > 0
        applied = hub.sync()
        assert applied["site0"] > 0
        assert hub.lag()["site0"] == 0

    def test_loose_member_needs_ship(self):
        hub, satellites, _, _ = build_two_site_federation(mode_b="loose")
        from repro.etl import ingest_jobs

        ingest_jobs(satellites["site1"].schema, [make_job(9002)])
        hub.sync()  # loose members do not move on sync
        assert hub.lag()["site1"] > 0
        hub.ship_loose()
        assert hub.lag()["site1"] == 0


class TestHubAggregation:
    def test_hub_aggregates_under_its_own_levels(self, federation):
        hub, _, _, _ = federation
        hub.aggregator.config = AggregationConfig(
            walltime_levels=TABLE1_FEDERATION_HUB
        )
        out = hub.aggregate_federation(["month"])
        assert set(out) == {"site0", "site1"}
        for name in out:
            schema = hub.database.schema(f"fed_{name}")
            levels = {
                r["walltime_level"]
                for r in schema.table("agg_job_month").rows()
            }
            assert levels <= set(TABLE1_FEDERATION_HUB.labels) | {"outside"}

    def test_satellite_aggregation_untouched_by_hub(self, federation):
        """Satellites retain full control of their own aggregates."""
        hub, satellites, _, _ = federation
        satellites["site0"].aggregate(["month"])
        before = satellites["site0"].schema.table("agg_job_month").checksum()
        hub.aggregate_federation(["month"])
        assert satellites["site0"].schema.table("agg_job_month").checksum() == before

    def test_reaggregate_federation_changes_binning(self, federation):
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        schema = hub.database.schema("fed_site0")
        default_levels = {
            r["walltime_level"] for r in schema.table("agg_job_month").rows()
        }
        hub.reaggregate_federation(
            AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB), ["month"]
        )
        new_levels = {
            r["walltime_level"] for r in schema.table("agg_job_month").rows()
        }
        assert new_levels != default_levels
        # totals preserved (no data lost or changed)
        raw = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
        agg = sum(r["cpu_hours"] for r in schema.table("agg_job_month").rows())
        assert agg == pytest.approx(raw)

    def test_federated_schemas_mapping(self, federation):
        hub, _, _, _ = federation
        schemas = hub.federated_schemas()
        assert set(schemas) == {"site0", "site1"}
