"""XD SU standardization and the synthetic HPL benchmark."""

from __future__ import annotations

import pytest

from repro.core import (
    standardization_report,
    standardize_federation,
)
from repro.simulators import (
    NUS_PER_XDSU,
    PHASE1_DTF_GFLOPS_PER_CORE,
    ConversionTable,
    ResourceSpec,
    derive_conversion_factor,
    nu_to_xdsu,
    run_hpl,
    xdsu_to_nu,
)

FAST = ResourceSpec("fast", 8, 16, 64, 30.0)
SLOW = ResourceSpec("slow", 8, 16, 64, 6.0)


class TestHpl:
    def test_deterministic_given_seed(self):
        a = run_hpl(FAST, seed=1)
        b = run_hpl(FAST, seed=1)
        assert a == b

    def test_efficiency_below_peak(self):
        result = run_hpl(FAST, seed=1)
        assert 0.5 <= result.efficiency <= 0.95
        assert result.measured_gflops_per_core < FAST.gflops_per_core

    def test_rmax_scales_with_cores(self):
        small = run_hpl(ResourceSpec("s", 2, 16, 64, 20.0), seed=1)
        big = run_hpl(ResourceSpec("b", 64, 16, 64, 20.0), seed=1)
        assert big.rmax_tflops > small.rmax_tflops * 10

    def test_faster_cores_give_larger_factor(self):
        fast = derive_conversion_factor(run_hpl(FAST, seed=1))
        slow = derive_conversion_factor(run_hpl(SLOW, seed=1))
        assert fast > slow > 0

    def test_reference_machine_factor_near_one(self):
        ref = ResourceSpec("dtf", 4, 2, 4, PHASE1_DTF_GFLOPS_PER_CORE / 0.82)
        factor = derive_conversion_factor(run_hpl(ref, seed=2, base_efficiency=0.82))
        assert factor == pytest.approx(1.0, rel=0.1)

    def test_nu_conversion_round_trip(self):
        assert nu_to_xdsu(xdsu_to_nu(5.0)) == pytest.approx(5.0)
        assert xdsu_to_nu(1.0) == NUS_PER_XDSU


class TestConversionTable:
    def test_unknown_resource_defaults_to_raw(self):
        table = ConversionTable({"a": 2.0})
        assert table.factor("a") == 2.0
        assert table.factor("b") == 1.0
        assert table.is_standardized("a")
        assert not table.is_standardized("b")

    def test_to_xdsu(self):
        table = ConversionTable({"a": 2.5})
        assert table.to_xdsu("a", 100.0) == pytest.approx(250.0)

    def test_charge_invariance_across_equivalent_work(self):
        """Invariant 5: the same computation costs the same XD SUs no
        matter which machine ran it.  A job needing W reference-core-hours
        takes W/f CPU-hours on a machine with factor f, and is charged
        (W/f) x f = W on any machine."""
        table, _ = standardize_federation({"fast": FAST, "slow": SLOW})
        work_ref_hours = 120.0
        for name in ("fast", "slow"):
            factor = table.factor(name)
            cpu_hours_needed = work_ref_hours / factor
            assert table.to_xdsu(name, cpu_hours_needed) == pytest.approx(
                work_ref_hours
            )


class TestStandardizationReport:
    def test_report_flags_unstandardized(self):
        table = ConversionTable({"a": 2.0})
        report = standardization_report(table, ["a", "b", "c"])
        assert report.standardized == ("a",)
        assert report.unstandardized == ("b", "c")
        assert not report.is_fully_standardized

    def test_federation_wide_benchmarking(self):
        table, results = standardize_federation({"fast": FAST, "slow": SLOW})
        assert set(table.factors) == {"fast", "slow"}
        assert set(results) == {"fast", "slow"}
        report = standardization_report(table, ["fast", "slow"])
        assert report.is_fully_standardized
