"""Tight replication: fidelity, filtering, routing, resumability."""

from __future__ import annotations

import pytest

from repro.core import (
    ReplicationChannel,
    ReplicationFilter,
    USER_PROFILE_TABLES,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import ColumnType, Database

C = ColumnType


def make_job(job_id, resource="comet", user="alice"):
    return ParsedJob(
        job_id=job_id, user=user, pi="pi001", queue="normal",
        application="namd", submit_ts=ts(2017, 1, 1), start_ts=ts(2017, 1, 1, 1),
        end_ts=ts(2017, 1, 1, 2), nodes=1, cores=4, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource=resource,
    )


@pytest.fixture()
def source_and_target():
    db = Database("satellite")
    source = db.create_schema("modw")
    hub_db = Database("hub")
    target = hub_db.create_schema("fed_satellite")
    return source, target


class TestChannelBasics:
    def test_replicates_jobs_realm(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(i) for i in range(10)])
        channel = ReplicationChannel(source, target)
        applied = channel.catch_up()
        assert applied > 0
        assert channel.lag == 0
        assert target.table("fact_job").checksum() == source.table("fact_job").checksum()
        assert target.table("dim_person").checksum() == source.table("dim_person").checksum()

    def test_incremental_replication(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1)])
        channel = ReplicationChannel(source, target)
        channel.catch_up()
        ingest_jobs(source, [make_job(2)])
        assert channel.lag == 1
        channel.pump()
        assert len(target.table("fact_job")) == 2

    def test_stats_track_filtering(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1)])
        channel = ReplicationChannel(
            source, target, filter=ReplicationFilter(tables=("dim_resource",))
        )
        channel.catch_up()
        assert channel.stats.events_filtered > 0
        assert channel.stats.events_seen == (
            channel.stats.events_applied + channel.stats.events_filtered
        )

    def test_resume_mid_stream_requires_provisioned_target(self, source_and_target):
        """Resuming past the DDL events into an empty schema is a hard
        error naming the poison LSN — the cursor does not advance past it
        (a real resume always follows a dump load; see LooseChannel)."""
        from repro.core import ReplicationError

        source, target = source_and_target
        ingest_jobs(source, [make_job(1)])
        mid = source.binlog.head_lsn
        ingest_jobs(source, [make_job(2)])
        channel = ReplicationChannel(source, target, start_lsn=mid)
        with pytest.raises(ReplicationError) as exc:
            channel.catch_up()
        assert "LSN" in str(exc.value)
        assert channel.cursor.position <= source.binlog.head_lsn


class TestTableFilter:
    def test_default_excludes_heavy_and_profile_tables(self):
        f = ReplicationFilter()
        assert f.table_allowed("fact_job")
        assert f.table_allowed("dim_person")
        assert not f.table_allowed("job_timeseries")  # Section II-C5
        for table in USER_PROFILE_TABLES:
            assert not f.table_allowed(table)
        assert not f.table_allowed("etl_markers")
        assert not f.table_allowed("agg_job_month")  # hub re-aggregates

    def test_none_whitelist_allows_other_realms(self):
        f = ReplicationFilter(tables=None)
        assert f.table_allowed("fact_storage")
        assert f.table_allowed("fact_vm")
        assert not f.table_allowed("job_timeseries")

    def test_initial_release_is_jobs_realm_only(self):
        """Section II-C1: only HPC Jobs realm replicates by default."""
        f = ReplicationFilter()
        assert not f.table_allowed("fact_storage")
        assert not f.table_allowed("fact_vm")
        assert not f.table_allowed("fact_job_perf")


class TestResourceRouting:
    def test_excluded_resource_rows_never_reach_hub(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1, resource="open_cluster"),
                             make_job(2, resource="secure_cluster")])
        channel = ReplicationChannel(
            source, target,
            filter=ReplicationFilter(exclude_resources={"secure_cluster"}),
        )
        channel.catch_up()
        names = {r["name"] for r in target.table("dim_resource").rows()}
        assert names == {"open_cluster"}
        open_id = next(iter(target.table("dim_resource").rows()))["resource_id"]
        assert all(
            r["resource_id"] == open_id for r in target.table("fact_job").rows()
        )
        assert len(target.table("fact_job")) == 1

    def test_include_allowlist(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1, resource="a"), make_job(2, resource="b"),
                             make_job(3, resource="c")])
        channel = ReplicationChannel(
            source, target,
            filter=ReplicationFilter(include_resources={"b"}),
        )
        channel.catch_up()
        assert {r["name"] for r in target.table("dim_resource").rows()} == {"b"}
        assert len(target.table("fact_job")) == 1

    def test_filter_learns_mapping_from_stream(self, source_and_target):
        """No out-of-band catalog: dim_resource events teach the filter."""
        source, target = source_and_target
        f = ReplicationFilter(exclude_resources={"secret"})
        channel = ReplicationChannel(source, target, filter=f)
        ingest_jobs(source, [make_job(1, resource="secret")])
        channel.catch_up()
        assert f._resource_names  # learned
        assert len(target.table("fact_job")) == 0

    def test_delete_events_respect_routing(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1, resource="open"),
                             make_job(2, resource="secret")])
        channel = ReplicationChannel(
            source, target,
            filter=ReplicationFilter(exclude_resources={"secret"}),
        )
        channel.catch_up()
        source.table("fact_job").delete_where(lambda r: True)
        channel.catch_up()
        assert len(target.table("fact_job")) == 0  # the open row's delete applied


class TestAmendmentsPropagate:
    """Operational reality: a re-shred amends or voids job records; tight
    replication must carry corrections, not only inserts."""

    def test_update_propagates(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1), make_job(2)])
        channel = ReplicationChannel(source, target)
        channel.catch_up()
        # the site amends job 1's accounting (e.g. corrected core count)
        source.table("fact_job").update_where(
            lambda r: r["job_id"] == 1, {"cores": 64, "cpu_hours": 64.0}
        )
        channel.catch_up()
        assert target.table("fact_job").checksum() == (
            source.table("fact_job").checksum()
        )
        resource_id = next(iter(target.table("dim_resource").rows()))["resource_id"]
        assert target.table("fact_job").get((resource_id, 1))["cores"] == 64

    def test_void_propagates(self, source_and_target):
        source, target = source_and_target
        ingest_jobs(source, [make_job(1), make_job(2), make_job(3)])
        channel = ReplicationChannel(source, target)
        channel.catch_up()
        source.table("fact_job").delete_where(lambda r: r["job_id"] == 2)
        channel.catch_up()
        assert len(target.table("fact_job")) == 2
        assert target.table("fact_job").checksum() == (
            source.table("fact_job").checksum()
        )

    def test_amended_hub_reaggregates_correctly(self, source_and_target):
        from repro.aggregation import Aggregator

        source, target = source_and_target
        ingest_jobs(source, [make_job(1)])
        channel = ReplicationChannel(source, target)
        channel.catch_up()
        source.table("fact_job").update_where(
            lambda r: True, {"cpu_hours": 123.0, "xdsu": 123.0}
        )
        channel.catch_up()
        Aggregator(target).aggregate_jobs("month")
        agg_total = sum(
            r["cpu_hours"] for r in target.table("agg_job_month").rows()
        )
        assert agg_total == 123.0
