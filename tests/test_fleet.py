"""Federated telemetry plane: shipments, fleet TSDB, dashboards, REST.

Covers the PR-10 tentpole end to end — satellite registry snapshots
riding the sync machinery into the hub's fleet TSDB — plus the
satellite fixes that shipped with it: the tracer ring buffer, the
``leave()`` telemetry purge, and shipment round-trip fidelity
(histogram buckets, non-finite values, counter resets).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import _demo_fleet_federation
from repro.obs import (
    FakeClock,
    FleetTSDB,
    MetricsHistory,
    MetricsRegistry,
    Observability,
    ShipmentError,
    TelemetryShipper,
    Tracer,
    alert_rule,
    build_shipment,
    parse_prometheus_text,
    shipment_checksum,
    shipment_size,
)
from repro.obs.fleet import SEQ_SERIES
from repro.realms import jobs_realm
from repro.ui import XdmodApi


def _registry(**counters: float) -> MetricsRegistry:
    """A registry with one labelled counter child per keyword."""
    registry = MetricsRegistry()
    family = registry.counter(
        "etl_ingest_records_total", "Records ingested", ("source",)
    )
    for source, value in counters.items():
        family.labels(source=source).inc(value)
    return registry


class TestShipment:
    def test_carries_full_exposition_including_buckets(self):
        registry = _registry(sacct=42)
        hist = registry.histogram(
            "etl_phase_seconds", "Phase latency", ("phase",)
        )
        hist.labels(phase="shred").observe(0.25)
        doc = build_shipment(registry, member="site0", seq=1, scraped_at=5.0)

        parsed = parse_prometheus_text(registry.render_prometheus())
        shipped = {
            (name, tuple(tuple(item) for item in labels)): value
            for name, labels, value in doc["samples"]
        }
        want = {
            (name, labels): _fmt_value
            for (name, labels), _fmt_value in parsed.samples.items()
        }
        assert set(shipped) == set(want)
        assert ("etl_phase_seconds_bucket",
                (("le", "+Inf"), ("phase", "shred"))) in shipped
        assert doc["types"]["etl_phase_seconds"] == "histogram"
        assert doc["member"] == "site0" and doc["seq"] == 1

    def test_walk_matches_text_round_trip(self):
        """The direct exposition walk is pinned to parse(render())."""
        registry = _registry(sacct=7, pbs=3)
        hist = registry.histogram("etl_phase_seconds", "Phase", ("phase",))
        hist.labels(phase="ingest").observe(1.5)
        hist.labels(phase="ingest").observe(120.0)
        parsed = parse_prometheus_text(registry.render_prometheus())
        walked = {
            (name, labels): value
            for name, labels, value in registry.iter_exposition_samples()
        }
        assert walked == parsed.samples
        assert registry.type_names() == parsed.types

    def test_checksum_detects_tamper(self):
        doc = build_shipment(_registry(sacct=1), member="m", seq=1, scraped_at=0.0)
        assert doc["checksum"] == shipment_checksum(doc)
        doc["samples"][0][2] = "999"
        assert doc["checksum"] != shipment_checksum(doc)

    def test_nonfinite_values_survive_strict_json(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("probe_value_ratio", "Probe", ("kind",))
        gauge.labels(kind="inf").set(float("inf"))
        gauge.labels(kind="ninf").set(float("-inf"))
        gauge.labels(kind="nan").set(float("nan"))
        doc = build_shipment(registry, member="m", seq=1, scraped_at=0.0)
        # strict JSON (allow_nan=False) round-trip must not lose them
        wire = json.dumps(doc, allow_nan=False)
        back = json.loads(wire)
        assert back == doc

        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        assert fleet.ingest(back) == "applied"
        assert fleet.history.last(
            "probe_value_ratio", kind="inf", member="m"
        ) == float("inf")
        assert fleet.history.last(
            "probe_value_ratio", kind="ninf", member="m"
        ) == float("-inf")
        nan = fleet.history.last("probe_value_ratio", kind="nan", member="m")
        assert nan != nan  # NaN

    def test_shipper_sequences_and_reships(self):
        shipper = TelemetryShipper(
            _registry(sacct=1), member="m", clock=FakeClock(auto_advance=1.0)
        )
        first = shipper.snapshot()
        assert first["seq"] == 1
        assert shipper.last_bytes == shipment_size(first)
        assert shipper.reship() is first  # redelivery: same doc, same seq
        assert shipper.snapshot()["seq"] == 2


class TestFleetTSDB:
    def test_merges_under_member_label(self):
        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        fleet.ingest(build_shipment(
            _registry(sacct=10), member="site0", seq=1, scraped_at=0.0))
        fleet.ingest(build_shipment(
            _registry(sacct=99), member="site1", seq=1, scraped_at=0.0))
        assert fleet.member_names() == ["site0", "site1"]
        assert fleet.history.last(
            "etl_ingest_records_total", member="site0", source="sacct") == 10
        assert fleet.history.last(
            "etl_ingest_records_total", member="site1", source="sacct") == 99

    def test_member_label_is_reserved(self):
        """A shipped sample carrying its own member label is re-labelled."""
        registry = MetricsRegistry()
        gauge = registry.gauge("fleet_series_rows", "Nested fleet", ("member",))
        gauge.labels(member="inner").set(5)
        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        fleet.ingest(build_shipment(registry, member="outer", seq=1, scraped_at=0.0))
        assert fleet.history.last("fleet_series_rows", member="outer") == 5
        assert fleet.history.last("fleet_series_rows", member="inner") is None

    def test_redelivery_collapses_in_place(self):
        clock = FakeClock(auto_advance=1.0)
        fleet = FleetTSDB(clock)
        shipper = TelemetryShipper(
            _registry(sacct=50), member="m", clock=FakeClock(auto_advance=1.0)
        )
        doc = shipper.snapshot()
        assert fleet.ingest(doc) == "applied"
        assert fleet.ingest(shipper.reship()) == "redelivered"
        assert fleet.ingest(shipper.reship()) == "redelivered"
        # the redelivered samples collapsed onto the original timestamp:
        # one stored sample, and increase() sees no extra growth
        assert len(fleet.history.samples(
            "etl_ingest_records_total", member="m")) == 1
        state = fleet.member_state("m")
        assert state.applied == 1 and state.redelivered == 2

    def test_redelivery_does_not_double_count_increase(self):
        clock = FakeClock(auto_advance=1.0)
        fleet = FleetTSDB(clock)
        registry = _registry(sacct=100)
        shipper = TelemetryShipper(
            registry, member="m", clock=FakeClock(auto_advance=1.0)
        )
        fleet.ingest(shipper.snapshot())            # seq 1: 100
        registry.counter(
            "etl_ingest_records_total", "Records ingested", ("source",)
        ).labels(source="sacct").inc(20)
        fleet.ingest(shipper.snapshot())            # seq 2: 120
        fleet.ingest(shipper.reship())              # seq 2 again (retry)
        at = clock.now()
        assert fleet.history.increase(
            "etl_ingest_records_total", 1000.0, at=at, member="m"
        ) == pytest.approx(20.0)

    def test_counter_reset_across_snapshots(self):
        """A satellite restart (counter back to a lower value) is treated
        as a reset by the history's increase(), not negative growth."""
        clock = FakeClock(auto_advance=1.0)
        fleet = FleetTSDB(clock)
        fleet.ingest(build_shipment(
            _registry(sacct=100), member="m", seq=1, scraped_at=0.0))
        fleet.ingest(build_shipment(
            _registry(sacct=10), member="m", seq=2, scraped_at=1.0))
        at = clock.now()
        assert fleet.history.increase(
            "etl_ingest_records_total", 1000.0, at=at, member="m"
        ) == pytest.approx(10.0)

    def test_out_of_order_duplicate_dropped(self):
        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        old = build_shipment(_registry(sacct=1), member="m", seq=1, scraped_at=0.0)
        new = build_shipment(_registry(sacct=9), member="m", seq=5, scraped_at=4.0)
        fleet.ingest(new)
        assert fleet.ingest(old) == "duplicate"
        assert fleet.history.last(
            "etl_ingest_records_total", member="m", source="sacct") == 9
        assert fleet.member_state("m").duplicates == 1

    def test_corrupt_and_malformed_shipments_rejected(self):
        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        doc = build_shipment(_registry(sacct=1), member="m", seq=1, scraped_at=0.0)
        tampered = dict(doc)
        tampered["seq"] = 99
        with pytest.raises(ShipmentError, match="checksum"):
            fleet.ingest(tampered)
        with pytest.raises(ShipmentError, match="missing"):
            fleet.ingest({"member": "m"})
        future = dict(doc)
        future["version"] = 99
        with pytest.raises(ShipmentError, match="version"):
            fleet.ingest(future)
        # nothing was stored by any rejected document
        assert fleet.member_names() == []

    def test_disabled_fleet_ignores_shipments(self):
        fleet = FleetTSDB(FakeClock(auto_advance=1.0), enabled=False)
        doc = build_shipment(_registry(sacct=1), member="m", seq=1, scraped_at=0.0)
        assert fleet.ingest(doc) == "disabled"
        assert fleet.member_names() == []

    def test_staleness_tracks_fresh_shipments_only(self):
        clock = FakeClock()
        fleet = FleetTSDB(clock)
        shipper = TelemetryShipper(
            _registry(sacct=1), member="m", clock=FakeClock(auto_advance=1.0)
        )
        fleet.ingest(shipper.snapshot())
        t0 = clock.now()
        clock.advance(500.0)
        assert fleet.staleness("m") == pytest.approx(clock.now() - t0)
        # a redelivery must NOT refresh staleness
        fleet.ingest(shipper.reship())
        assert fleet.staleness("m") == pytest.approx(clock.now() - t0)
        assert fleet.stale_members(100.0) == ["m"]
        assert fleet.stale_members(10_000.0) == []
        # a fresh shipment does
        fleet.ingest(shipper.snapshot())
        assert fleet.staleness("m") == pytest.approx(0.0)
        assert fleet.staleness("unknown") is None
        # the synthetic sequence series agrees with the bookkeeping
        assert fleet.history.age_s(SEQ_SERIES, member="m") == pytest.approx(
            fleet.staleness("m")
        )

    def test_series_count_and_purge(self):
        fleet = FleetTSDB(FakeClock(auto_advance=1.0))
        fleet.ingest(build_shipment(
            _registry(sacct=1, pbs=2), member="a", seq=1, scraped_at=0.0))
        fleet.ingest(build_shipment(
            _registry(sacct=1), member="b", seq=1, scraped_at=0.0))
        assert fleet.series_count("a") == 3  # two counters + seq series
        assert fleet.series_count("b") == 2
        assert fleet.series_count() == 5
        assert fleet.purge_member("a") == 3
        assert fleet.member_names() == ["b"]
        assert fleet.series_count("a") == 0
        assert fleet.history.last(
            "etl_ingest_records_total", member="a") is None

    def test_render_prometheus_merged_and_deterministic(self):
        def build() -> FleetTSDB:
            fleet = FleetTSDB(FakeClock(auto_advance=1.0))
            for i in range(2):
                registry = _registry(sacct=10 * (i + 1))
                hist = registry.histogram(
                    "etl_phase_seconds", "Phase", ("phase",))
                hist.labels(phase="shred").observe(0.5)
                fleet.ingest(build_shipment(
                    registry, member=f"site{i}", seq=1, scraped_at=0.0))
            return fleet

        text = build().render_prometheus()
        assert text == build().render_prometheus()
        assert '# TYPE etl_phase_seconds histogram' in text
        assert 'member="site0"' in text and 'member="site1"' in text
        parsed = parse_prometheus_text(text)
        assert parsed.value(
            "etl_ingest_records_total", member="site1", source="sacct") == 20
        assert parsed.value(
            "etl_phase_seconds_bucket", member="site0",
            phase="shred", le="+Inf") == 1


class TestHistorySupport:
    def test_purge_labels_superset_match(self):
        history = MetricsHistory(
            MetricsRegistry(enabled=False), FakeClock(auto_advance=1.0)
        )
        history.observe("x_rows", 1.0, member="a", source="s")
        history.observe("x_rows", 2.0, member="b", source="s")
        history.observe("y_rows", 3.0, member="a")
        assert history.purge_labels(member="a") == 2
        assert history.last("x_rows", member="a") is None
        assert history.last("x_rows", member="b") == 2.0
        with pytest.raises(ValueError):
            history.purge_labels()

    def test_observe_key_matches_observe(self):
        history = MetricsHistory(
            MetricsRegistry(enabled=False), FakeClock(auto_advance=1.0)
        )
        history.observe("x_rows", 1.0, now=5.0, b="2", a="1")
        history.observe_key(("x_rows", (("a", "1"), ("b", "2"))), 4.0, now=5.0)
        # same key, same timestamp: collapsed last-write-wins
        assert history.samples("x_rows", a="1", b="2") == [(5.0, 4.0)]
        assert history.last_sample(
            ("x_rows", (("a", "1"), ("b", "2")))) == (5.0, 4.0)


class TestTracerRingBuffer:
    def test_overflow_evicts_oldest_keeps_newest(self):
        tracer = Tracer(max_spans=2, name="t")
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [record.name for record in tracer.finished]
        assert names == ["s3", "s4"]
        assert tracer.spans_dropped == 3

    def test_drops_counted_in_registry(self):
        obs = Observability(clock=FakeClock(auto_advance=0.001), name="t")
        obs.tracer.max_spans = 1
        for i in range(4):
            with obs.tracer.span(f"s{i}"):
                pass
        assert obs.registry.render_prometheus().count(
            "obs_spans_dropped_total 3") == 1


@pytest.fixture(scope="module")
def healthy_fleet():
    return _demo_fleet_federation()


@pytest.fixture(scope="module")
def stale_fleet():
    return _demo_fleet_federation(inject_faults=True)


class TestFederationAcceptance:
    def test_local_only_metrics_visible_at_hub(self, healthy_fleet):
        hub, satellites, _ = healthy_fleet
        # the satellite's ETL counters exist only in its local registry …
        local = satellites[0].obs.registry.render_prometheus()
        assert "etl_ingest_records_total" in local
        assert "etl_ingest_records_total" not in (
            hub.obs.registry.render_prometheus()
        )
        # … yet the hub can query them, under the member label
        for instance in satellites:
            shipped = hub.fleet.history.last(
                "etl_ingest_records_total", member=instance.name
            )
            exposed = parse_prometheus_text(
                instance.obs.registry.render_prometheus()
            )
            local_total = sum(
                value for (name, _), value in exposed.samples.items()
                if name == "etl_ingest_records_total"
            )
            assert shipped is not None and shipped == local_total > 0
        assert hub.fleet.member_names() == [s.name for s in satellites]

    def test_fleet_dashboard_deterministic(self, healthy_fleet):
        _, _, monitor = healthy_fleet
        board = monitor.render_fleet()
        assert board == monitor.render_fleet()
        again = _demo_fleet_federation()
        assert again[2].render_fleet() == board
        assert "site0" in board and "STALE" not in board

    def test_staleness_alert_fires_when_shipments_stop(self, stale_fleet):
        hub, _, monitor = stale_fleet
        firing = {s.rule.id: s for s in monitor.alerts.firing()}
        assert "fleet_telemetry_stale" in firing
        assert firing["fleet_telemetry_stale"].member == "site2"
        stale_after = alert_rule("fleet_telemetry_stale").max_age_s
        assert hub.fleet.stale_members(stale_after) == ["site2"]
        board = monitor.render_fleet()
        assert "STALE" in board and "stale members: site2" in board

    def test_leave_purges_departed_member_everywhere(self, stale_fleet):
        hub, _, _ = _demo_fleet_federation()
        hub.leave("site1")
        # registry: no phantom member in later scrapes
        assert 'member="site1"' not in hub.obs.registry.render_prometheus()
        # history: partial-label queries no longer pool the member
        assert hub.obs.history.last(
            "replication_lag_rows", member="site1") is None
        assert hub.obs.history.quantile_over_time(
            0.5, "replication_lag_rows", 10_000.0, member="site1") is None
        # fleet TSDB: state and series gone
        assert "site1" not in hub.fleet.member_names()
        assert hub.fleet.series_count("site1") == 0
        assert hub.fleet.history.last(
            "etl_ingest_records_total", member="site1") is None
        # the survivors still work
        assert hub.fleet.history.last(
            "etl_ingest_records_total", member="site0") is not None


class TestRestSurface:
    def test_fleet_metrics_endpoint(self, healthy_fleet):
        hub, _, monitor = healthy_fleet
        api = XdmodApi({"jobs": jobs_realm()}, hub.schema, monitor=monitor)
        status, content_type, body, _ = api.handle_http("/fleet/metrics", {})
        assert status == 200 and "text/plain" in content_type
        parsed = parse_prometheus_text(body.decode())
        assert parsed.value(SEQ_SERIES, member="site0") is not None

    def test_fleet_metrics_requires_hub(self):
        api = XdmodApi({}, {}, monitor=None)
        status, _, body, _ = api.handle_http("/fleet/metrics", {})
        assert status == 404 and b"no fleet TSDB" in body

    def test_health_reports_stale_members(self, stale_fleet):
        hub, _, monitor = stale_fleet
        api = XdmodApi({"jobs": jobs_realm()}, hub.schema, monitor=monitor)
        status, payload = api.handle("/health", {})
        assert status == 200
        assert payload["fleet_stale_members"] == ["site2"]
        assert payload["status"] == "degraded"

    def test_health_empty_stale_list_when_fresh(self, healthy_fleet):
        hub, _, monitor = healthy_fleet
        api = XdmodApi({"jobs": jobs_realm()}, hub.schema, monitor=monitor)
        status, payload = api.handle("/health", {})
        assert status == 200
        assert payload["fleet_stale_members"] == []
