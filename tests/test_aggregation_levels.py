"""Aggregation levels: Table I bins, config round trips, merging."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.aggregation import (
    DEFAULT_JOBSIZE_LEVELS,
    FIG7_VM_MEMORY_LEVELS,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_A,
    TABLE1_INSTANCE_B,
    AggregationLevel,
    AggregationLevelSet,
    LevelConfigError,
    merge_level_sets,
)
from repro.timeutil import SECONDS_PER_HOUR

H = SECONDS_PER_HOUR


class TestTableOne:
    """The exact configurations the paper's Table I lists."""

    def test_instance_a_bins(self):
        assert TABLE1_INSTANCE_A.labels == (
            "1-60 seconds", "1-60 minutes", "1-5 hours",
        )
        assert TABLE1_INSTANCE_A.level_of(30) == "1-60 seconds"
        assert TABLE1_INSTANCE_A.level_of(30 * 60) == "1-60 minutes"
        assert TABLE1_INSTANCE_A.level_of(3 * H) == "1-5 hours"
        # instance A monitors resources with a 5-hour wall-time limit
        assert TABLE1_INSTANCE_A.level_of(6 * H) == AggregationLevelSet.OUTSIDE

    def test_instance_b_bins(self):
        assert TABLE1_INSTANCE_B.labels == (
            "1-10 hours", "10-20 hours", "20-50 hours",
        )
        assert TABLE1_INSTANCE_B.level_of(2 * H) == "1-10 hours"
        assert TABLE1_INSTANCE_B.level_of(15 * H) == "10-20 hours"
        assert TABLE1_INSTANCE_B.level_of(45 * H) == "20-50 hours"
        assert TABLE1_INSTANCE_B.level_of(60 * H) == AggregationLevelSet.OUTSIDE

    def test_hub_bins(self):
        assert TABLE1_FEDERATION_HUB.labels == (
            "0-60 minutes", "1-5 hours", "5-10 hours",
            "10-20 hours", "20-50 hours",
        )

    def test_hub_covers_both_instances(self):
        """The hub's levels 'best represent all the data from the
        federation's component instances'."""
        assert TABLE1_FEDERATION_HUB.covers(TABLE1_INSTANCE_A)
        assert TABLE1_FEDERATION_HUB.covers(TABLE1_INSTANCE_B)
        assert not TABLE1_INSTANCE_A.covers(TABLE1_INSTANCE_B)

    def test_every_a_and_b_value_bins_on_hub(self):
        for seconds in (1, 59, 60, 3599, 3600, 5 * H - 1,  # A's range
                        1 * H, 10 * H, 19 * H, 49 * H):     # B's range
            assert TABLE1_FEDERATION_HUB.level_of(seconds) != (
                AggregationLevelSet.OUTSIDE
            )


class TestLevelSetValidation:
    def test_overlap_rejected(self):
        with pytest.raises(LevelConfigError):
            AggregationLevelSet(
                "x", "f", "s",
                (AggregationLevel("a", 0, 10), AggregationLevel("b", 5, 20)),
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(LevelConfigError):
            AggregationLevelSet(
                "x", "f", "s",
                (AggregationLevel("a", 0, 10), AggregationLevel("a", 10, 20)),
            )

    def test_empty_rejected(self):
        with pytest.raises(LevelConfigError):
            AggregationLevelSet("x", "f", "s", ())

    def test_degenerate_level_rejected(self):
        with pytest.raises(LevelConfigError):
            AggregationLevel("a", 5, 5)

    def test_levels_sorted_on_construction(self):
        ls = AggregationLevelSet(
            "x", "f", "s",
            (AggregationLevel("hi", 10, 20), AggregationLevel("lo", 0, 10)),
        )
        assert ls.labels == ("lo", "hi")

    def test_none_and_nan_are_outside(self):
        assert TABLE1_INSTANCE_A.level_of(None) == AggregationLevelSet.OUTSIDE
        assert TABLE1_INSTANCE_A.level_of(float("nan")) == (
            AggregationLevelSet.OUTSIDE
        )

    def test_interior_gap_is_outside(self):
        # instance B's bins start at 1s but A's have a gap at 60..3600? no —
        # construct an explicit gap to check
        ls = AggregationLevelSet(
            "x", "f", "s",
            (AggregationLevel("a", 0, 10), AggregationLevel("b", 20, 30)),
        )
        assert ls.level_of(15) == AggregationLevelSet.OUTSIDE


class TestJsonConfig:
    def test_round_trip(self):
        clone = AggregationLevelSet.from_json(TABLE1_FEDERATION_HUB.to_json())
        assert clone == TABLE1_FEDERATION_HUB

    def test_bad_config_raises(self):
        with pytest.raises(LevelConfigError):
            AggregationLevelSet.from_config({"name": "x"})


class TestMerge:
    def test_merged_set_covers_members(self):
        merged = merge_level_sets("hub", [TABLE1_INSTANCE_A, TABLE1_INSTANCE_B])
        assert merged.covers(TABLE1_INSTANCE_A)
        assert merged.covers(TABLE1_INSTANCE_B)

    def test_merge_different_fields_rejected(self):
        with pytest.raises(LevelConfigError):
            merge_level_sets("x", [TABLE1_INSTANCE_A, FIG7_VM_MEMORY_LEVELS])

    def test_merge_empty_rejected(self):
        with pytest.raises(LevelConfigError):
            merge_level_sets("x", [])

    @given(value=st.integers(min_value=1, max_value=50 * H - 1))
    def test_merged_never_coarser(self, value):
        """Anything either member set bins, the merged set bins."""
        merged = merge_level_sets("hub", [TABLE1_INSTANCE_A, TABLE1_INSTANCE_B])
        for member in (TABLE1_INSTANCE_A, TABLE1_INSTANCE_B):
            if member.level_of(value) != AggregationLevelSet.OUTSIDE:
                assert merged.level_of(value) != AggregationLevelSet.OUTSIDE


class TestFig7Levels:
    def test_bins_match_figure(self):
        assert FIG7_VM_MEMORY_LEVELS.labels == (
            "<1 GB", "1-2 GB", "2-4 GB", "4-8 GB",
        )
        assert FIG7_VM_MEMORY_LEVELS.level_of(0.5) == "<1 GB"
        assert FIG7_VM_MEMORY_LEVELS.level_of(1.0) == "1-2 GB"
        assert FIG7_VM_MEMORY_LEVELS.level_of(3.9) == "2-4 GB"
        assert FIG7_VM_MEMORY_LEVELS.level_of(8.0) == "4-8 GB"


@given(value=st.floats(min_value=-10, max_value=2000, allow_nan=False))
def test_binary_search_matches_linear_scan(value):
    """level_of's bisection agrees with a straightforward scan."""
    ls = DEFAULT_JOBSIZE_LEVELS
    expected = AggregationLevelSet.OUTSIDE
    for level in ls.levels:
        if level.contains(value):
            expected = level.label
            break
    assert ls.level_of(value) == expected
