"""Federation monitor and database persistence."""

from __future__ import annotations

import pytest

from repro.core import FederationMonitor
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import (
    Database,
    DumpError,
    load_database,
    save_database,
    snapshot_info,
)


def make_job(job_id):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 5, 1), start_ts=ts(2017, 5, 1, 1),
        end_ts=ts(2017, 5, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource="r1",
    )


class TestFederationMonitor:
    def test_healthy_status(self, federation):
        hub, satellites, _, _ = federation
        status = FederationMonitor(hub).status()
        assert status.hub == "hub"
        assert len(status.members) == 2
        assert status.all_consistent
        assert status.max_lag == 0
        assert status.degraded_members == ()
        for member in status.members:
            assert member.consistent
            assert member.fact_job_rows > 0

    def test_lag_surfaces(self, federation):
        hub, satellites, _, _ = federation
        ingest_jobs(satellites["site0"].schema, [make_job(7777)])
        status = FederationMonitor(hub).status()
        assert status.max_lag > 0
        assert "site0" in status.degraded_members

    def test_inconsistency_surfaces(self, federation):
        hub, _, _, _ = federation
        hub.database.schema("fed_site0").table("fact_job").update_where(
            lambda r: True, {"cpu_hours": 0.0}
        )
        status = FederationMonitor(hub).status()
        assert not status.all_consistent

    def test_render_panel(self, federation):
        hub, _, _, _ = federation
        text = FederationMonitor(hub).render()
        assert "Federation hub: hub" in text
        assert "site0" in text and "site1" in text
        assert "consistency: OK" in text

    def test_render_includes_registry_rates(self, federation):
        hub, _, _, _ = federation
        hub.sync()
        status = FederationMonitor(hub).status()
        tight = [m for m in status.members if m.mode == "tight"]
        assert all(m.syncs > 0 for m in tight)
        text = FederationMonitor(hub).render()
        assert "replication rates:" in text


class TestMemberHealthPrecedence:
    """The one-word verdict resolves competing signals in a fixed order:
    circuit-open > quarantined > inconsistent > probing > lagging > ok."""

    @staticmethod
    def _status(**overrides):
        from repro.core.monitor import MemberStatus

        base = dict(
            name="m", mode="tight", lag_events=0, fed_schema="fed_m",
            tables=1, fact_job_rows=1, events_applied=1, events_filtered=0,
            consistent=True,
        )
        base.update(overrides)
        return MemberStatus(**base)

    def test_ok_baseline(self):
        assert self._status().health == "ok"

    def test_lagging(self):
        assert self._status(lag_events=3).health == "lagging"

    def test_probing_beats_lagging(self):
        status = self._status(lag_events=3, circuit_state="half_open")
        assert status.health == "probing"

    def test_inconsistent_beats_probing_and_lagging(self):
        status = self._status(
            lag_events=3, circuit_state="half_open", consistent=False
        )
        assert status.health == "INCONSISTENT"

    def test_quarantined_beats_inconsistent(self):
        status = self._status(
            lag_events=3, circuit_state="half_open", consistent=False,
            dead_letters=2,
        )
        assert status.health == "quarantined"

    def test_circuit_open_beats_everything(self):
        status = self._status(
            lag_events=3, circuit_state="open", consistent=False,
            dead_letters=2,
        )
        assert status.health == "CIRCUIT-OPEN"

    def test_every_non_ok_verdict_counts_as_degraded(self):
        from repro.core.monitor import FederationStatus

        members = (
            self._status(name="a", lag_events=1),
            self._status(name="b", circuit_state="open"),
            self._status(name="c"),
        )
        status = FederationStatus(
            hub="hub", members=members, totals={}, all_consistent=True
        )
        assert status.degraded_members == ("a", "b")


class TestPersistence:
    def _database(self):
        db = Database("ccr")
        schema = db.create_schema("modw")
        ingest_jobs(schema, [make_job(i) for i in range(10)])
        db.create_schema("modw_aggregates")
        return db

    def test_save_load_round_trip(self, tmp_path):
        db = self._database()
        save_database(db, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        assert loaded.name == "ccr"
        assert loaded.schema_names() == db.schema_names()
        assert loaded.schema("modw").checksum() == db.schema("modw").checksum()

    def test_snapshot_info(self, tmp_path):
        db = self._database()
        save_database(db, tmp_path / "snap")
        info = snapshot_info(tmp_path / "snap")
        assert info["database"] == "ccr"
        assert {s["name"] for s in info["schemas"]} == {
            "modw", "modw_aggregates",
        }

    def test_resave_overwrites(self, tmp_path):
        db = self._database()
        save_database(db, tmp_path / "snap")
        ingest_jobs(db.schema("modw"), [make_job(99)])
        save_database(db, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        assert len(loaded.schema("modw").table("fact_job")) == 11

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DumpError):
            load_database(tmp_path)
        with pytest.raises(DumpError):
            snapshot_info(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        db = self._database()
        path = save_database(db, tmp_path / "snap")
        (path / "manifest.json").write_text("{broken")
        with pytest.raises(DumpError):
            load_database(path)

    def test_tampered_dump_detected(self, tmp_path):
        db = self._database()
        path = save_database(db, tmp_path / "snap")
        import gzip
        import json

        dump_file = path / "modw.dump.gz"
        dump = json.loads(gzip.decompress(dump_file.read_bytes()))
        for entry in dump["tables"]:
            if entry["schema"]["name"] == "fact_job":
                entry["rows"][0][0] = 424242
        dump_file.write_bytes(gzip.compress(json.dumps(dump).encode()))
        with pytest.raises(DumpError):
            load_database(path)
        # verify=False loads anyway (forensics path)
        loaded = load_database(path, verify=False)
        assert loaded.schema("modw").has_table("fact_job")
