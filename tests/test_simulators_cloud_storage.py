"""Cloud and storage simulators: stream well-formedness and shapes."""

from __future__ import annotations

import pytest

from repro.etl import CLOUD_EVENT_SCHEMA, validate
from repro.simulators import (
    CloudConfig,
    CloudSimulator,
    DEFAULT_FILESYSTEMS,
    StorageConfig,
    StorageSimulator,
    calibrate_jobs_per_day,
    ccr_like_site,
    figure1_sites,
    vm_sessions,
)
from repro.simulators import ResourceSpec, WorkloadConfig
from repro.timeutil import ts

T0, T1 = ts(2017, 1, 1), ts(2017, 3, 1)


class TestCloudSimulator:
    def test_deterministic(self):
        a = CloudSimulator(CloudConfig(seed=1, vms_per_day=3)).generate(T0, T1)
        b = CloudSimulator(CloudConfig(seed=1, vms_per_day=3)).generate(T0, T1)
        assert a == b

    def test_every_event_validates(self, cloud_events):
        for event in cloud_events:
            validate(event, CLOUD_EVENT_SCHEMA)

    def test_events_globally_time_ordered(self, cloud_events):
        timestamps = [e["ts"] for e in cloud_events]
        assert timestamps == sorted(timestamps)

    def test_event_ids_unique(self, cloud_events):
        ids = [e["event_id"] for e in cloud_events]
        assert len(set(ids)) == len(ids)

    def test_lifecycles_terminate_within_window(self, cloud_events):
        for events in vm_sessions(cloud_events).values():
            assert events[-1]["event_type"] == "terminate"
            assert events[-1]["ts"] <= T1

    def test_state_machine_validity(self, cloud_events):
        """No pause while stopped, no double-start, etc."""
        for events in vm_sessions(cloud_events).values():
            state = "provisioned"
            for event in events:
                etype = event["event_type"]
                if etype == "start":
                    assert state in ("provisioned", "stopped")
                    state = "running"
                elif etype == "stop":
                    assert state == "running"
                    state = "stopped"
                elif etype == "pause":
                    assert state == "running"
                    state = "paused"
                elif etype == "unpause":
                    assert state == "paused"
                    state = "running"
                elif etype == "resize":
                    assert state in ("running", "stopped", "paused")

    def test_flavor_mix_spans_memory_bins(self, cloud_events):
        """Figure 7 needs VMs in all four memory bins."""
        mems = {e["mem_gb"] for e in cloud_events}
        assert {0.5, 1.0, 2.0, 4.0, 8.0} <= mems


class TestStorageSimulator:
    def test_deterministic(self):
        a = list(StorageSimulator(StorageConfig(seed=2, n_users=4)).generate(T0, T1))
        b = list(StorageSimulator(StorageConfig(seed=2, n_users=4)).generate(T0, T1))
        assert a == b

    def test_quota_enforced(self, storage_docs):
        for doc in storage_docs:
            assert doc["logical_usage_gb"] <= doc["hard_quota_gb"] + 1e-9

    def test_physical_exceeds_logical_by_ratio(self, storage_docs):
        cfg = StorageConfig()
        for doc in storage_docs[:100]:
            # values are rounded to 3 decimals at emission
            assert doc["physical_usage_gb"] == pytest.approx(
                doc["logical_usage_gb"] * cfg.physical_ratio, abs=2e-3
            )

    def test_snapshot_cadence(self, storage_docs):
        timestamps = sorted({d["ts"] for d in storage_docs})
        gaps = {b - a for a, b in zip(timestamps, timestamps[1:])}
        assert gaps == {StorageConfig().snapshot_interval_s}

    def test_all_filesystems_reported(self, storage_docs):
        names = {d["filesystem"] for d in storage_docs}
        assert names == {fs.name for fs in DEFAULT_FILESYSTEMS}


class TestSitePresets:
    def test_calibration_hits_target_utilization(self):
        resource = ResourceSpec("cal", 16, 16, 64, 16.0)
        config = calibrate_jobs_per_day(
            WorkloadConfig(seed=5, max_cores=resource.total_cores),
            resource,
            target_utilization=0.6,
        )
        # measure realized demand over a month
        from repro.simulators import WorkloadGenerator

        demand = 0.0
        horizon = 30 * 86400
        for req in WorkloadGenerator(config).generate(T0, T0 + horizon):
            cores = min(req.cores, resource.total_cores)
            demand += cores * req.req_walltime_s * req.runtime_fraction
        utilization = demand / (resource.total_cores * horizon)
        assert 0.25 < utilization < 1.2  # right order of magnitude

    def test_figure1_sites_shape(self):
        sites = figure1_sites(scale=0.25)
        assert set(sites) == {"comet", "stampede2", "stampede"}
        # stampede ramps down, stampede2 ramps up
        down = sites["stampede"].workload.monthly_activity
        up = sites["stampede2"].workload.monthly_activity
        assert down[0] > down[-1]
        assert up[0] < up[-1]

    def test_ccr_site(self):
        site = ccr_like_site(scale=0.25)
        assert site.resource.total_cores > 0
        assert site.workload.jobs_per_day > 0

    def test_unreasonable_utilization_rejected(self):
        resource = ResourceSpec("cal", 4, 4, 16, 10.0)
        with pytest.raises(ValueError):
            calibrate_jobs_per_day(WorkloadConfig(), resource, target_utilization=5.0)
