"""Shared fixtures: small synthetic instances and federations.

Scale is kept small (days of workload, handfuls of users) so the whole
suite runs in seconds; the benchmarks exercise year-scale data.
"""

from __future__ import annotations

import pytest

from repro.core import FederationHub, XdmodInstance, standardize_federation
from repro.simulators import CloudConfig, CloudSimulator, ResourceSpec, StorageConfig, StorageSimulator, WorkloadConfig, WorkloadGenerator, simulate_resource, to_sacct_log
from repro.timeutil import ts

T0 = ts(2017, 1, 1)
T_FEB = ts(2017, 2, 1)
T_MAR = ts(2017, 3, 1)
T_END = ts(2018, 1, 1)


@pytest.fixture(scope="session")
def small_resource() -> ResourceSpec:
    return ResourceSpec(
        "testcluster", nodes=16, cores_per_node=16,
        mem_per_node_gb=64.0, gflops_per_core=16.0,
    )


@pytest.fixture(scope="session")
def job_records(small_resource):
    """~2 weeks of scheduled jobs on the small resource."""
    config = WorkloadConfig(
        seed=7, jobs_per_day=15.0, max_cores=small_resource.total_cores
    )
    requests = WorkloadGenerator(config).generate(T0, T0 + 14 * 86400)
    return simulate_resource(small_resource, requests)


@pytest.fixture(scope="session")
def sacct_log(job_records):
    return to_sacct_log(job_records)


@pytest.fixture()
def instance(small_resource, sacct_log):
    """A fresh single-resource XDMoD instance with jobs ingested."""
    from repro.simulators import ConversionTable

    conversion = ConversionTable.benchmark_resources(
        {small_resource.name: small_resource}
    )
    inst = XdmodInstance("test_instance", conversion=conversion)
    inst.pipeline.ingest_sacct(sacct_log, default_resource=small_resource.name)
    return inst


@pytest.fixture()
def aggregated_instance(instance):
    instance.aggregate(["day", "month"])
    return instance


@pytest.fixture()
def cloud_events():
    return CloudSimulator(CloudConfig(seed=5, vms_per_day=4.0)).generate(
        T0, T_MAR
    )


@pytest.fixture()
def storage_docs():
    return list(
        StorageSimulator(StorageConfig(seed=5, n_users=8)).generate(T0, T_MAR)
    )


def build_two_site_federation(*, mode_b: str = "tight"):
    """Two satellites with distinct resources joined to one hub."""
    specs = {
        "alpha_cluster": ResourceSpec("alpha_cluster", 8, 16, 64, 20.0),
        "beta_cluster": ResourceSpec("beta_cluster", 16, 8, 128, 10.0),
    }
    conversion, _ = standardize_federation(specs)
    satellites = {}
    for i, (res_name, spec) in enumerate(sorted(specs.items())):
        inst = XdmodInstance(f"site{i}", conversion=conversion)
        config = WorkloadConfig(
            seed=20 + i, jobs_per_day=10.0, max_cores=spec.total_cores
        )
        records = simulate_resource(
            spec, WorkloadGenerator(config).generate(T0, T0 + 10 * 86400)
        )
        inst.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=res_name
        )
        satellites[inst.name] = inst
    hub = FederationHub("hub", conversion=conversion)
    hub.join(satellites["site0"], mode="tight")
    hub.join(satellites["site1"], mode=mode_b)
    return hub, satellites, specs, conversion


@pytest.fixture()
def federation():
    return build_two_site_federation()


@pytest.fixture()
def lock_sanitizer():
    """Activate the runtime lock sanitizer for one test.

    Every lock constructed through ``create_lock`` while the fixture is
    live becomes a :class:`~repro.analysis.sanitizer.SanitizedLock`; the
    teardown fails the test on any observed lock-order inversion, so a
    test only has to *exercise* a code path to gate it.
    """
    from repro.analysis import sanitizer

    monitor = sanitizer.activate(sanitizer.LockMonitor())
    try:
        yield monitor
    finally:
        sanitizer.deactivate()
    if monitor.inversions:
        pytest.fail(
            "lock-order inversion detected by the runtime sanitizer:\n"
            + monitor.report()
        )
