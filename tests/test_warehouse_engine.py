"""Storage engine: CRUD, keys, indexes, checksums, event application."""

from __future__ import annotations

import pytest

from repro.warehouse import ColumnType, Database, DuplicateObjectError, PrimaryKeyError, SchemaError, TableSchema, UnknownObjectError, make_columns

C = ColumnType


def jobs_table_schema() -> TableSchema:
    return TableSchema(
        "jobs",
        make_columns([
            ("job_id", C.INT, False),
            ("user", C.STR, False),
            ("cpu_hours", C.FLOAT),
        ]),
        primary_key=("job_id",),
        indexes=("user",),
    )


@pytest.fixture()
def table():
    db = Database()
    schema = db.create_schema("modw")
    return schema.create_table(jobs_table_schema())


class TestDatabaseAndSchema:
    def test_create_and_lookup(self):
        db = Database()
        db.create_schema("a")
        assert db.has_schema("a")
        assert "a" in db
        assert db.schema_names() == ["a"]

    def test_duplicate_schema_rejected(self):
        db = Database()
        db.create_schema("a")
        with pytest.raises(DuplicateObjectError):
            db.create_schema("a")

    def test_ensure_schema_idempotent(self):
        db = Database()
        s1 = db.ensure_schema("a")
        assert db.ensure_schema("a") is s1

    def test_unknown_schema(self):
        with pytest.raises(UnknownObjectError):
            Database().schema("nope")

    def test_drop_schema(self):
        db = Database()
        db.create_schema("a")
        db.drop_schema("a")
        assert not db.has_schema("a")
        with pytest.raises(UnknownObjectError):
            db.drop_schema("a")

    def test_invalid_schema_name(self):
        with pytest.raises(SchemaError):
            Database().create_schema("bad name")

    def test_duplicate_table_rejected(self):
        db = Database()
        schema = db.create_schema("modw")
        schema.create_table(jobs_table_schema())
        with pytest.raises(DuplicateObjectError):
            schema.create_table(jobs_table_schema())

    def test_drop_table(self):
        db = Database()
        schema = db.create_schema("modw")
        schema.create_table(jobs_table_schema())
        schema.drop_table("jobs")
        assert not schema.has_table("jobs")
        with pytest.raises(UnknownObjectError):
            schema.table("jobs")


class TestCrud:
    def test_insert_and_len(self, table):
        table.insert({"job_id": 1, "user": "u1", "cpu_hours": 2.0})
        table.insert({"job_id": 2, "user": "u2"})
        assert len(table) == 2

    def test_insert_many(self, table):
        n = table.insert_many(
            {"job_id": i, "user": f"u{i}"} for i in range(5)
        )
        assert n == 5 and len(table) == 5

    def test_duplicate_pk_rejected(self, table):
        table.insert({"job_id": 1, "user": "u1"})
        with pytest.raises(PrimaryKeyError):
            table.insert({"job_id": 1, "user": "other"})

    def test_get_by_key(self, table):
        table.insert({"job_id": 1, "user": "u1", "cpu_hours": 3.5})
        row = table.get((1,))
        assert row["user"] == "u1" and row["cpu_hours"] == 3.5
        assert table.get((99,)) is None

    def test_upsert_updates_in_place(self, table):
        table.insert({"job_id": 1, "user": "u1", "cpu_hours": 1.0})
        table.upsert({"job_id": 1, "user": "u1", "cpu_hours": 9.0})
        assert len(table) == 1
        assert table.get((1,))["cpu_hours"] == 9.0

    def test_update_where(self, table):
        table.insert_many(
            {"job_id": i, "user": "u1" if i < 3 else "u2"} for i in range(5)
        )
        n = table.update_where(
            lambda r: r["user"] == "u1", {"cpu_hours": 7.0}
        )
        assert n == 3
        assert all(
            r["cpu_hours"] == 7.0 for r in table.rows() if r["user"] == "u1"
        )

    def test_update_pk_collision_rejected(self, table):
        table.insert({"job_id": 1, "user": "a"})
        table.insert({"job_id": 2, "user": "b"})
        with pytest.raises(PrimaryKeyError):
            table.update_where(lambda r: r["job_id"] == 2, {"job_id": 1})

    def test_delete_where(self, table):
        table.insert_many({"job_id": i, "user": "u"} for i in range(4))
        assert table.delete_where(lambda r: r["job_id"] % 2 == 0) == 2
        assert sorted(r["job_id"] for r in table.rows()) == [1, 3]
        # deleted keys are reusable
        table.insert({"job_id": 0, "user": "u"})
        assert len(table) == 3

    def test_truncate(self, table):
        table.insert_many({"job_id": i, "user": "u"} for i in range(4))
        table.truncate()
        assert len(table) == 0
        assert table.get((1,)) is None


class TestIndexes:
    def test_lookup_index(self, table):
        table.insert_many(
            {"job_id": i, "user": "alice" if i % 2 else "bob"}
            for i in range(6)
        )
        alice = table.lookup_index("user", "alice")
        assert sorted(r["job_id"] for r in alice) == [1, 3, 5]

    def test_index_tracks_updates_and_deletes(self, table):
        table.insert({"job_id": 1, "user": "alice"})
        table.update_where(lambda r: r["job_id"] == 1, {"user": "bob"})
        assert table.lookup_index("user", "alice") == []
        assert len(table.lookup_index("user", "bob")) == 1
        table.delete_where(lambda r: True)
        assert table.lookup_index("user", "bob") == []

    def test_missing_index_errors(self, table):
        with pytest.raises(UnknownObjectError):
            table.lookup_index("cpu_hours", 1.0)


class TestChecksum:
    def test_checksum_order_independent(self):
        db = Database()
        s1 = db.create_schema("a")
        s2 = db.create_schema("b")
        t1 = s1.create_table(jobs_table_schema())
        t2 = s2.create_table(jobs_table_schema())
        rows = [{"job_id": i, "user": f"u{i}", "cpu_hours": float(i)} for i in range(10)]
        for r in rows:
            t1.insert(r)
        for r in reversed(rows):
            t2.insert(r)
        assert t1.checksum() == t2.checksum()

    def test_checksum_detects_content_change(self, table):
        table.insert({"job_id": 1, "user": "u", "cpu_hours": 1.0})
        before = table.checksum()
        table.update_where(lambda r: True, {"cpu_hours": 2.0})
        assert table.checksum() != before

    def test_schema_checksum_independent_of_schema_name(self):
        db = Database()
        for name in ("x", "y"):
            schema = db.create_schema(name)
            t = schema.create_table(jobs_table_schema())
            t.insert({"job_id": 1, "user": "u"})
        assert db.schema("x").checksum() == db.schema("y").checksum()


class TestApplyEvent:
    def test_full_replay_reproduces_tables(self):
        db = Database()
        source = db.create_schema("src")
        t = source.create_table(jobs_table_schema())
        t.insert({"job_id": 1, "user": "a", "cpu_hours": 1.0})
        t.insert({"job_id": 2, "user": "b", "cpu_hours": 2.0})
        t.update_where(lambda r: r["job_id"] == 1, {"cpu_hours": 5.0})
        t.delete_where(lambda r: r["job_id"] == 2)
        target = db.create_schema("dst")
        for event in source.binlog:
            target.apply_event(event)
        assert target.table("jobs").checksum() == t.checksum()

    def test_insert_event_is_idempotent_for_keyed_tables(self):
        db = Database()
        source = db.create_schema("src")
        t = source.create_table(jobs_table_schema())
        t.insert({"job_id": 1, "user": "a"})
        target = db.create_schema("dst")
        events = list(source.binlog)
        for event in events:
            target.apply_event(event)
        for event in events:  # replay everything again
            target.apply_event(event)
        assert len(target.table("jobs")) == 1

    def test_truncate_event(self):
        db = Database()
        source = db.create_schema("src")
        t = source.create_table(jobs_table_schema())
        t.insert({"job_id": 1, "user": "a"})
        t.truncate()
        target = db.create_schema("dst")
        for event in source.binlog:
            target.apply_event(event)
        assert len(target.table("jobs")) == 0

    def test_keyless_table_delete_by_row_image(self):
        schema_def = TableSchema(
            "log", make_columns([("msg", C.STR, False)])
        )
        db = Database()
        source = db.create_schema("src")
        t = source.create_table(schema_def)
        t.insert({"msg": "a"})
        t.insert({"msg": "b"})
        t.delete_where(lambda r: r["msg"] == "a")
        target = db.create_schema("dst")
        for event in source.binlog:
            target.apply_event(event)
        assert [r["msg"] for r in target.table("log").rows()] == ["b"]
