"""Authentication: accounts, passwords, SAML, SSO flows (Figures 4-5)."""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.auth import Account, AccountStore, AuthError, IdentityProvider, LocalAuthenticator, Role, SamlAssertion, SamlError, ServiceProvider, SsoKind, SsoManager, hash_password, hub_as_identity_provider, job_viewer_allowed, make_provider, verify_password


class TestAccounts:
    def test_role_capabilities_nest(self):
        user = Account("u", roles={Role.USER}).capabilities()
        pi = Account("p", roles={Role.PI}).capabilities()
        staff = Account("s", roles={Role.CENTER_STAFF}).capabilities()
        assert user < pi < staff

    def test_duplicate_account_rejected(self):
        store = AccountStore("inst")
        store.add(Account("alice"))
        with pytest.raises(AuthError):
            store.add(Account("alice"))

    def test_session_capability_enforcement(self):
        store = AccountStore("inst")
        store.add(Account("alice", roles={Role.USER}))
        session = store.open_session("alice", "local")
        session.require("view_own_jobs")
        with pytest.raises(AuthError):
            session.require("view_all_jobs")

    def test_session_expiry(self):
        store = AccountStore("inst")
        store.add(Account("alice"))
        session = store.open_session("alice", "local", ttl_s=-1)
        assert session.expired
        with pytest.raises(AuthError):
            session.require("view_own_jobs")

    def test_job_viewer_acl(self):
        store = AccountStore("inst")
        store.add(Account("alice", roles={Role.USER}))
        store.add(Account("pi01", roles={Role.PI}))
        store.add(Account("ops", roles={Role.CENTER_STAFF}))
        alice = store.open_session("alice", "local")
        pi = store.open_session("pi01", "local")
        ops = store.open_session("ops", "local")
        assert job_viewer_allowed(alice, job_owner="alice", job_pi="pi01")
        assert not job_viewer_allowed(alice, job_owner="bob", job_pi="pi01")
        assert job_viewer_allowed(pi, job_owner="bob", job_pi="pi01")
        assert not job_viewer_allowed(pi, job_owner="bob", job_pi="other")
        assert job_viewer_allowed(ops, job_owner="anyone", job_pi="any")


class TestLocalPasswords:
    def test_hash_and_verify(self):
        record = hash_password("correct horse battery")
        assert verify_password("correct horse battery", record)
        assert not verify_password("wrong", record)

    def test_salts_differ(self):
        a = hash_password("same password")
        b = hash_password("same password")
        assert a.salt != b.salt and a.digest != b.digest

    def test_login_flow(self):
        store = AccountStore("inst")
        store.add(Account("alice"))
        auth = LocalAuthenticator(store)
        auth.set_password("alice", "s3cret-pass")
        session = auth.login("alice", "s3cret-pass")
        assert session.method == "local"

    def test_failures_indistinguishable(self):
        store = AccountStore("inst")
        store.add(Account("alice"))
        auth = LocalAuthenticator(store)
        auth.set_password("alice", "s3cret-pass")
        with pytest.raises(AuthError) as wrong_pw:
            auth.login("alice", "nope-nope")
        with pytest.raises(AuthError) as no_user:
            auth.login("ghost", "whatever")
        assert str(wrong_pw.value) == str(no_user.value)

    def test_short_password_rejected(self):
        store = AccountStore("inst")
        store.add(Account("alice"))
        with pytest.raises(AuthError):
            LocalAuthenticator(store).set_password("alice", "short")


class TestSaml:
    def _idp_sp(self):
        idp = IdentityProvider("idp.example.edu")
        idp.register("alice", {"mail": "alice@example.edu"})
        sp = ServiceProvider("xdmod.example.edu")
        sp.trust(idp)
        return idp, sp

    def test_valid_assertion_accepted(self):
        idp, sp = self._idp_sp()
        assertion = idp.issue("alice", "xdmod.example.edu")
        assert sp.validate(assertion).subject == "alice"

    @pytest.mark.parametrize("field,value", [
        ("subject", "mallory"),
        ("audience", "other.example.edu"),
        ("attributes", {"mail": "mallory@evil"}),
        ("expires_at", 9999999999.0),
    ])
    def test_any_tampering_invalidates_signature(self, field, value):
        """Invariant 7: a tampered assertion never authenticates."""
        idp, sp = self._idp_sp()
        assertion = idp.issue("alice", "xdmod.example.edu")
        tampered = replace(assertion, **{field: value})
        with pytest.raises(SamlError):
            sp.validate(tampered)

    def test_untrusted_issuer_rejected(self):
        rogue = IdentityProvider("idp.evil.example")
        rogue.register("alice")
        _, sp = self._idp_sp()
        with pytest.raises(SamlError):
            sp.validate(rogue.issue("alice", "xdmod.example.edu"))

    def test_expired_assertion_rejected(self):
        idp, sp = self._idp_sp()
        assertion = idp.issue("alice", "xdmod.example.edu", now=time.time() - 3600)
        with pytest.raises(SamlError):
            sp.validate(assertion)

    def test_unknown_principal(self):
        idp, _ = self._idp_sp()
        with pytest.raises(SamlError):
            idp.issue("ghost", "anywhere")

    def test_wire_round_trip(self):
        idp, sp = self._idp_sp()
        assertion = idp.issue("alice", "xdmod.example.edu")
        wire = SamlAssertion.from_dict(assertion.to_dict())
        sp.validate(wire)


class TestSsoManager:
    def _shibboleth_instance(self):
        manager = SsoManager("ccr_xdmod")
        provider = make_provider(SsoKind.SHIBBOLETH, "idp.buffalo.edu")
        manager.configure_sso(provider)
        return manager, provider

    def test_local_and_sso_paths_equal_capabilities(self):
        """Figure 4: groups R and S reach the same instance features."""
        manager, provider = self._shibboleth_instance()
        manager.accounts.add(Account("bob", roles={Role.USER}))
        manager.local.set_password("bob", "longpassword")
        provider.register_user("bob")
        local = manager.login_local("bob", "longpassword")
        sso = manager.login_sso(provider.idp.issue("bob", "ccr_xdmod"))
        assert local.capabilities == sso.capabilities
        assert local.method == "local" and sso.method == "shibboleth"

    def test_shibboleth_attributes_prepopulate_account(self):
        manager, provider = self._shibboleth_instance()
        provider.register_user("carol", {
            "givenName": "Carol", "surname": "Chen",
            "mail": "carol@buffalo.edu", "departmentNumber": "Physics",
        })
        manager.login_sso(provider.idp.issue("carol", "ccr_xdmod"))
        account = manager.accounts.get("carol")
        assert account.full_name == "Carol Chen"
        assert account.email == "carol@buffalo.edu"
        assert account.sso_attributes["departmentNumber"] == "Physics"

    def test_single_source_constraint(self):
        manager, _ = self._shibboleth_instance()
        with pytest.raises(AuthError):
            manager.configure_sso(make_provider(SsoKind.LDAP, "ldap.example"))

    def test_multi_source_future_mode(self):
        manager = SsoManager("hub", allow_multiple_sources=True)
        manager.configure_sso(make_provider(SsoKind.SHIBBOLETH, "idp.a"))
        manager.configure_sso(make_provider(SsoKind.KEYCLOAK, "idp.b"))
        assert manager.sso_sources == ["idp.a", "idp.b"]

    def test_globus_requires_linkage(self):
        manager = SsoManager("xsede_xdmod")
        globus = make_provider(SsoKind.GLOBUS, "auth.globus.org")
        manager.configure_sso(globus)
        globus.register_user("uuid-123")
        with pytest.raises(AuthError):
            manager.login_sso(globus.idp.issue("uuid-123", "xsede_xdmod"))
        manager.globus_links.link("uuid-123", "dan")
        manager.accounts.add(Account("dan"))
        session = manager.login_sso(globus.idp.issue("uuid-123", "xsede_xdmod"))
        assert session.username == "dan"

    def test_auto_provision_toggle(self):
        manager, provider = self._shibboleth_instance()
        manager.auto_provision = False
        provider.register_user("eve")
        with pytest.raises(AuthError):
            manager.login_sso(provider.idp.issue("eve", "ccr_xdmod"))
        manager.auto_provision = True
        session = manager.login_sso(provider.idp.issue("eve", "ccr_xdmod"))
        assert session.username == "eve"

    def test_hub_as_identity_provider(self):
        """Section II-D3: 'the federation hub can do the job of
        authenticating users of the federation's satellite instances.'"""
        satellites = [SsoManager("site_x"), SsoManager("site_y")]
        hub_idp = hub_as_identity_provider("hub", satellites)
        hub_idp.register_user("fred")
        for manager in satellites:
            assertion = hub_idp.idp.issue("fred", manager.instance)
            session = manager.login_sso(assertion)
            assert session.username == "fred"

    def test_assertion_for_one_satellite_rejected_by_another(self):
        satellites = [SsoManager("site_x"), SsoManager("site_y")]
        hub_idp = hub_as_identity_provider("hub", satellites)
        hub_idp.register_user("fred")
        assertion = hub_idp.idp.issue("fred", "site_x")
        with pytest.raises(SamlError):
            satellites[1].login_sso(assertion)
