"""HTTP JSON API over a live (loopback) server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.auth import Account, AccountStore, Role
from repro.realms import jobs_realm
from repro.timeutil import ts
from repro.ui import ApiServer, XdmodApi
from tests.conftest import T0

END = ts(2017, 6, 1)


def _get(url: str, token: str | None = None):
    request = urllib.request.Request(url)
    if token:
        request.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def api(aggregated_instance):
    return XdmodApi({"jobs": jobs_realm()}, aggregated_instance.schema)


class TestDispatchUnit:
    """Handler logic without a socket."""

    def test_health(self, api):
        status, payload = api.handle("/health", {})
        assert status == 200 and payload["realms"] == ["jobs"]

    def test_realm_catalog(self, api):
        status, payload = api.handle("/realms", {})
        assert "cpu_hours" in payload["jobs"]["metrics"]
        assert "resource" in payload["jobs"]["dimensions"]

    def test_unknown_route(self, api):
        status, _ = api.handle("/bogus", {})
        assert status == 404

    def test_query_requires_params(self, api):
        status, payload = api.handle("/query?realm=jobs", {})
        assert status == 400 and "error" in payload

    def test_unknown_realm(self, api):
        status, _ = api.handle(f"/query?realm=nope&metric=x&start=0&end=1", {})
        assert status == 400

    def test_query_rows(self, api):
        status, payload = api.handle(
            f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={END}"
            "&group_by=queue",
            {},
        )
        assert status == 200
        assert payload["rows"]

    def test_filters(self, api):
        status, payload = api.handle(
            f"/query?realm=jobs&metric=n_jobs_ended&start={T0}&end={END}"
            "&group_by=queue&filter.queue=normal",
            {},
        )
        assert status == 200
        assert {r["group"] for r in payload["rows"]} == {"normal"}

    def test_chart_payload(self, api):
        status, payload = api.handle(
            f"/chart?realm=jobs&metric=xdsu&start={T0}&end={END}"
            "&group_by=queue&top_n=2",
            {},
        )
        assert status == 200
        assert len(payload["series"]) <= 2

    def test_bad_realm_query_error_maps_to_400(self, api):
        status, _ = api.handle(
            f"/query?realm=jobs&metric=bogus&start={T0}&end={END}", {}
        )
        assert status == 400


class TestAuthGate:
    def test_query_requires_token_when_enabled(self, aggregated_instance):
        api = XdmodApi(
            {"jobs": jobs_realm()}, aggregated_instance.schema,
            require_auth=True,
        )
        status, _ = api.handle(
            f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={END}", {}
        )
        assert status == 401
        store = AccountStore("inst")
        store.add(Account("alice", roles={Role.USER}))
        session = store.open_session("alice", "local")
        api.register_session(session)
        status, _ = api.handle(
            f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={END}",
            {"Authorization": f"Bearer {session.token}"},
        )
        assert status == 200
        # catalog stays public
        status, _ = api.handle("/realms", {})
        assert status == 200


class TestLiveServer:
    def test_end_to_end_over_http(self, api):
        with ApiServer(api) as server:
            status, payload = _get(f"{server.url}/health")
            assert status == 200
            status, payload = _get(
                f"{server.url}/query?realm=jobs&metric=cpu_hours"
                f"&start={T0}&end={END}&group_by=resource"
            )
            assert status == 200
            assert payload["rows"]
            groups = {r["group"] for r in payload["rows"]}
            assert groups == {"testcluster"}

    def test_404_over_http(self, api):
        with ApiServer(api) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(f"{server.url}/nope")
            assert exc.value.code == 404


class TestFederatedApi:
    def test_hub_serves_federated_sources(self, federation):
        """The hub's web UI surface: one API over all replicated schemas."""
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        api = XdmodApi({"jobs": jobs_realm()}, hub.federated_schemas())
        status, payload = api.handle(
            f"/query?realm=jobs&metric=xdsu&start={T0}&end={END}"
            "&group_by=resource&view=aggregate",
            {},
        )
        assert status == 200
        groups = {r["group"] for r in payload["rows"]}
        assert groups == {"alpha_cluster", "beta_cluster"}

    def test_federated_person_groups_qualified(self, federation):
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        api = XdmodApi({"jobs": jobs_realm()}, hub.federated_schemas())
        status, payload = api.handle(
            f"/query?realm=jobs&metric=n_jobs_ended&start={T0}&end={END}"
            "&group_by=person&view=aggregate",
            {},
        )
        assert status == 200
        assert all("@" in r["group"] for r in payload["rows"])
