"""Live (threaded) replication daemon."""

from __future__ import annotations

import time

import pytest

from repro.core import LiveReplicator
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts


def make_job(job_id):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 6, 1), start_ts=ts(2017, 6, 1, 1),
        end_ts=ts(2017, 6, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource="r1",
    )


class TestLiveReplicator:
    def test_background_sync_drains_lag(self, federation):
        hub, satellites, _, _ = federation
        with LiveReplicator(hub, interval_s=0.01) as live:
            ingest_jobs(satellites["site0"].schema,
                        [make_job(5000 + i) for i in range(20)])
            assert live.wait_until_current(timeout=5.0)
        assert hub.lag() == {"site0": 0, "site1": 0}
        fed = hub.database.schema("fed_site0")
        assert fed.table("fact_job").checksum() == (
            satellites["site0"].schema.table("fact_job").checksum()
        )

    def test_stop_drains_by_default(self, federation):
        hub, satellites, _, _ = federation
        live = LiveReplicator(hub, interval_s=60.0).start()  # long interval
        ingest_jobs(satellites["site0"].schema, [make_job(6001)])
        live.stop()  # final drain happens here
        assert hub.lag()["site0"] == 0

    def test_double_start_rejected(self, federation):
        hub, _, _, _ = federation
        live = LiveReplicator(hub, interval_s=0.05).start()
        try:
            with pytest.raises(RuntimeError):
                live.start()
        finally:
            live.stop()
        assert not live.running

    def test_bad_interval(self, federation):
        hub, _, _, _ = federation
        with pytest.raises(ValueError):
            LiveReplicator(hub, interval_s=0)

    def test_stats_accumulate(self, federation):
        hub, satellites, _, _ = federation
        with LiveReplicator(hub, interval_s=0.01) as live:
            ingest_jobs(satellites["site1"].schema, [make_job(7001)])
            live.wait_until_current(timeout=5.0)
            time.sleep(0.05)
        assert live.stats.cycles > 0
        assert live.stats.events_applied >= 1
        assert live.stats.errors == 0
