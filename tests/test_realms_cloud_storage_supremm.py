"""Cloud, Storage, and SUPReMM realms."""

from __future__ import annotations

import pytest

from repro.aggregation import Aggregator
from repro.etl import (
    ingest_cloud_events,
    ingest_performance,
    ingest_storage_snapshots,
)
from repro.realms import (
    RealmQueryError,
    cloud_realm,
    storage_realm,
    supremm_realm,
)
from repro.simulators import generate_performance_batch
from repro.timeutil import ts
from repro.warehouse import Database
from tests.conftest import T0, T_MAR


@pytest.fixture()
def cloud_schema(cloud_events):
    schema = Database().create_schema("modw")
    ingest_cloud_events(schema, cloud_events)
    Aggregator(schema).aggregate_cloud("month")
    return schema


@pytest.fixture()
def storage_schema(storage_docs):
    schema = Database().create_schema("modw")
    ingest_storage_snapshots(schema, storage_docs)
    Aggregator(schema).aggregate_storage("month")
    return schema


class TestCloudRealm:
    def test_core_hours_total_matches_facts(self, cloud_schema):
        realm = cloud_realm()
        total = realm.query(
            cloud_schema, "core_hours", start=T0, end=T_MAR, view="aggregate"
        ).totals()["total"]
        raw = sum(r["core_hours"] for r in cloud_schema.table("fact_vm").rows())
        assert total == pytest.approx(raw)

    def test_memory_level_partition(self, cloud_schema):
        """Figure 7's group-by: memory bins partition total core hours."""
        realm = cloud_realm()
        total = realm.query(
            cloud_schema, "core_hours", start=T0, end=T_MAR, view="aggregate"
        ).totals()["total"]
        by_bin = realm.query(
            cloud_schema, "core_hours", start=T0, end=T_MAR,
            group_by="memory_level", view="aggregate",
        ).totals()
        assert sum(by_bin.values()) == pytest.approx(total)
        from repro.aggregation import FIG7_VM_MEMORY_LEVELS

        assert set(by_bin) <= set(FIG7_VM_MEMORY_LEVELS.labels) | {"outside"}

    def test_avg_core_hours_per_vm(self, cloud_schema):
        realm = cloud_realm()
        rows = realm.query(
            cloud_schema, "avg_core_hours_per_vm",
            start=T0, end=T_MAR, group_by="memory_level",
        ).rows
        assert rows
        for row in rows:
            assert row.value is None or row.value >= 0

    def test_vm_counts(self, cloud_schema):
        realm = cloud_realm()
        started = realm.query(
            cloud_schema, "n_vms_started", start=T0, end=T_MAR, view="aggregate"
        ).totals()["total"]
        # VMs clamped to the window edge terminate exactly at T_MAR and
        # bin into March, so the "ended" query needs one extra month
        ended = realm.query(
            cloud_schema, "n_vms_ended", start=T0, end=ts(2017, 4, 1),
            view="aggregate",
        ).totals()["total"]
        assert started == len(cloud_schema.table("fact_vm"))
        assert ended == started  # simulator closes every VM


class TestStorageRealm:
    def test_file_count_and_physical_usage_grow(self, storage_schema):
        """Figure 6's shape: both series grow month over month."""
        realm = storage_realm()
        for metric in ("file_count", "physical_usage_gb"):
            series = realm.query(
                storage_schema, metric, start=T0, end=T_MAR
            ).series()["total"]
            values = [v for _, v in series]
            assert len(values) == 2
            assert values[-1] > values[0]

    def test_filesystem_dimension(self, storage_schema):
        realm = storage_realm()
        result = realm.query(
            storage_schema, "logical_usage_gb",
            start=T0, end=T_MAR, group_by="filesystem", view="aggregate",
        )
        assert set(result.groups()) == {
            "isilon_home", "isilon_projects", "gpfs_scratch",
        }

    def test_tb_scaling(self, storage_schema):
        realm = storage_realm()
        gb = realm.query(storage_schema, "physical_usage_gb",
                         start=T0, end=T_MAR, view="aggregate").totals()["total"]
        tb = realm.query(storage_schema, "physical_usage_tb",
                         start=T0, end=T_MAR, view="aggregate").totals()["total"]
        assert tb == pytest.approx(gb / 1000.0)

    def test_quota_utilization_bounded(self, storage_schema):
        realm = storage_realm()
        result = realm.query(
            storage_schema, "quota_utilization",
            start=T0, end=T_MAR, view="aggregate",
        )
        value = result.totals()["total"]
        assert 0.0 < value <= 1.5


class TestSupremmRealm:
    @pytest.fixture()
    def perf_instance(self, instance, job_records, small_resource):
        batch = generate_performance_batch(job_records, small_resource, max_jobs=40)
        ingest_performance(instance.schema, batch)
        return instance

    def test_weighted_average_bounded(self, perf_instance):
        realm = supremm_realm()
        result = realm.query(
            perf_instance.schema, "avg_cpu_user",
            start=T0, end=T_MAR,
        )
        assert result.rows
        for row in result.rows:
            assert 0.0 <= row.value <= 1.0

    def test_group_by_application(self, perf_instance):
        realm = supremm_realm()
        result = realm.query(
            perf_instance.schema, "avg_flops_gf",
            start=T0, end=T_MAR, group_by="application",
        )
        apps = {
            r["name"] for r in perf_instance.schema.table("dim_application").rows()
        }
        assert set(result.groups()) <= apps

    def test_unknown_metric_rejected(self, perf_instance):
        realm = supremm_realm()
        with pytest.raises(RealmQueryError):
            realm.query(perf_instance.schema, "avg_bogons", start=T0, end=T_MAR)

    def test_all_nine_metrics_queryable(self, perf_instance):
        realm = supremm_realm()
        assert len(realm.metrics) == 9
        for metric in realm.metrics:
            realm.query(perf_instance.schema, metric, start=T0, end=T_MAR)

    def test_no_perf_table_returns_empty(self, aggregated_instance):
        realm = supremm_realm()
        result = realm.query(
            aggregated_instance.schema, "avg_cpu_user", start=T0, end=T_MAR
        )
        assert result.rows == []
