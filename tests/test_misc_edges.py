"""Edge cases across smaller surfaces: ascii rendering, chart helpers,
engine column access, predicate descriptions, schema helpers."""

from __future__ import annotations

import pytest

from repro.realms.base import Metric, RealmResult, ResultRow
from repro.ui.ascii import render_lines, render_table
from repro.ui.charts import ChartData, Series, chart_from_result
from repro.warehouse import (
    ColumnType,
    Database,
    P,
    SchemaError,
    TableSchema,
    make_columns,
)

C = ColumnType


class TestAsciiEdges:
    def test_render_lines_empty_chart(self):
        chart = ChartData(title="empty", x_label="x", y_label="y")
        assert "(no data)" in render_lines(chart)

    def test_render_lines_all_none_values(self):
        chart = ChartData(
            title="nones", x_label="x", y_label="y",
            series=[Series("s", [("a", None), ("b", None)])],
        )
        assert "(no data)" in render_lines(chart)

    def test_render_table_missing_points_dash(self):
        chart = ChartData(
            title="gaps", x_label="x", y_label="y",
            series=[
                Series("s1", [("jan", 1.0), ("feb", 2.0)]),
                Series("s2", [("feb", 3.0)]),
            ],
        )
        text = render_table(chart)
        assert "-" in text


class TestChartFromResult:
    def _result(self, *, timeseries=True):
        metric = Metric("m", "Metric", "units", "m")
        result = RealmResult(metric=metric, dimension="g")
        for i, group in enumerate(("a", "b")):
            result.rows.append(
                ResultRow(
                    group=group,
                    period_start=100 if timeseries else None,
                    period_label="2017-01" if timeseries else None,
                    value=float(10 - i),
                )
            )
        return result

    def test_timeseries_detection(self):
        chart = chart_from_result(self._result(), title="t")
        assert chart.view == "timeseries"
        chart = chart_from_result(self._result(timeseries=False), title="t")
        assert chart.view == "aggregate"

    def test_order_and_top_n(self):
        chart = chart_from_result(self._result(), title="t", top_n=1)
        assert chart.labels == ["a"]  # the larger total

    def test_y_label_includes_unit(self):
        chart = chart_from_result(self._result(), title="t")
        assert "[units]" in chart.y_label


class TestRealmResultHelpers:
    def test_series_ordering_by_period(self):
        metric = Metric("m", "M", "", "m")
        result = RealmResult(metric=metric, dimension=None)
        result.rows = [
            ResultRow("g", 200, "feb", 2.0),
            ResultRow("g", 100, "jan", 1.0),
        ]
        assert result.series()["g"] == [("jan", 1.0), ("feb", 2.0)]

    def test_totals_skip_none(self):
        metric = Metric("m", "M", "", "m")
        result = RealmResult(metric=metric, dimension=None)
        result.rows = [
            ResultRow("g", 100, "jan", None),
            ResultRow("g", 200, "feb", 5.0),
        ]
        assert result.totals() == {"g": 5.0}

    def test_metric_ratio_none_on_zero_denominator(self):
        metric = Metric("r", "R", "", "num", denominator="den")
        assert metric.value(10.0, 0.0) is None
        assert metric.value(10.0, 2.0) == 5.0

    def test_metric_scale(self):
        metric = Metric("r", "R", "TB", "gb", scale=1e-3)
        assert metric.value(1500.0, 0.0) == pytest.approx(1.5)


class TestEngineColumnAccess:
    def test_column_values_and_multi(self):
        db = Database()
        schema = db.create_schema("s")
        table = schema.create_table(
            TableSchema(
                "t",
                make_columns([("a", C.INT, False), ("b", C.STR, False)]),
                primary_key=("a",),
            )
        )
        for i in range(4):
            table.insert({"a": i, "b": f"x{i}"})
        table.delete_where(lambda r: r["a"] == 2)
        assert table.column_values("a") == [0, 1, 3]
        assert table.columns_values(["b", "a"]) == [
            ("x0", 0), ("x1", 1), ("x3", 3),
        ]

    def test_row_at_tombstone(self):
        db = Database()
        schema = db.create_schema("s")
        table = schema.create_table(
            TableSchema("t", make_columns([("a", C.INT, False)]),
                        primary_key=("a",))
        )
        table.insert({"a": 1})
        table.delete_where(lambda r: True)
        from repro.warehouse import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            table.row_at(0)


class TestPredicateDescriptions:
    def test_combinators_describe_themselves(self):
        pred = (P.eq("a", 1) & P.gt("b", 2)) | ~P.isnull("c")
        text = pred.description
        assert "AND" in text and "OR" in text and "NOT" in text

    def test_true_predicate(self):
        assert P.true()({})


class TestSchemaHelpers:
    def test_make_columns_mixed_arity(self):
        cols = make_columns([("a", C.INT), ("b", C.STR, False)])
        assert cols[0].nullable and not cols[1].nullable

    def test_table_schema_requires_valid_name(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name", make_columns([("a", C.INT)]))
