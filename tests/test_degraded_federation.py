"""Degraded-mode federation: fault-isolated sync, quarantine, recovery.

The acceptance scenario for the resilience layer: with seeded faults on
one of three satellites, the hub keeps healthy members at zero lag, the
flaky member's circuit opens and later recovers, and after a dead-letter
replay the whole federation checks out consistent again.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CircuitBreaker,
    CircuitState,
    FaultPlan,
    FederationHub,
    FederationMonitor,
    LooseChannel,
    ReplicationChannel,
    ReplicationError,
    RetryPolicy,
    XdmodInstance,
    check_federation,
    corrupt_dump_file,
    inject_apply_faults,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database, DumpError


def make_job(job_id, resource="r1"):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 1, 1), start_ts=ts(2017, 1, 1, 1),
        end_ts=ts(2017, 1, 1, 3), nodes=1, cores=2, req_walltime_s=7200,
        state="COMPLETED", exit_code=0, resource=resource,
    )


def make_satellite(name: str, n_jobs: int = 6) -> XdmodInstance:
    satellite = XdmodInstance(name)
    ingest_jobs(
        satellite.schema,
        [make_job(i, resource=f"{name}_cluster") for i in range(n_jobs)],
    )
    return satellite


@pytest.fixture()
def three_site_hub():
    hub = FederationHub("hub")
    satellites = {}
    for name in ("site0", "site1", "site2"):
        satellites[name] = make_satellite(name)
        hub.join(satellites[name], retry_policy=RetryPolicy(max_retries=1))
    return hub, satellites


class TestChannelQuarantine:
    """Dead-letter behaviour at the single-channel level."""

    def _channel(self, **kwargs) -> tuple[ReplicationChannel, XdmodInstance]:
        satellite = make_satellite("sat")
        hub_db = Database("hub")
        channel = ReplicationChannel(
            satellite.schema, hub_db.create_schema("fed_sat"), **kwargs
        )
        return channel, satellite

    def test_poison_event_without_quarantine_wedges(self):
        channel, satellite = self._channel()
        channel.catch_up()
        head = satellite.schema.binlog.head_lsn
        ingest_jobs(satellite.schema, [make_job(100)])
        wrapper = inject_apply_faults(channel, FaultPlan(poison_lsns={head}))
        position_before = channel.cursor.position
        with pytest.raises(ReplicationError):
            channel.catch_up()
        # cursor did not advance past the poison event (at-least-once)
        assert channel.cursor.position <= head
        assert channel.lag > 0
        # ...and an idempotent re-pump after the fix resumes at that LSN
        wrapper.plan.heal()
        applied = channel.catch_up()
        assert applied > 0
        assert channel.lag == 0
        assert channel.cursor.position == satellite.schema.binlog.head_lsn
        assert channel.target.table("fact_job").checksum() == (
            satellite.schema.table("fact_job").checksum()
        )
        assert position_before <= head

    def test_poison_event_quarantined_and_skipped(self):
        channel, satellite = self._channel(quarantine=True)
        channel.catch_up()
        head = satellite.schema.binlog.head_lsn
        ingest_jobs(satellite.schema, [make_job(100), make_job(101)])
        wrapper = inject_apply_faults(channel, FaultPlan(poison_lsns={head}))
        channel.catch_up()
        # the poison event is parked, everything after it still applied
        assert channel.lag == 0
        assert len(channel.dead_letters) == 1
        assert channel.dead_letters.lsns() == [head]
        assert channel.stats.events_quarantined == 1
        # replay while still poisoned: stays quarantined
        assert channel.replay() == 0
        assert len(channel.dead_letters) == 1
        # heal, replay: applied and consistent
        wrapper.plan.heal()
        assert channel.replay() == 1
        assert len(channel.dead_letters) == 0
        assert channel.stats.events_quarantined == 0
        assert channel.target.table("fact_job").checksum() == (
            satellite.schema.table("fact_job").checksum()
        )

    def test_replay_addresses_specific_lsns(self):
        channel, satellite = self._channel(quarantine=True)
        channel.catch_up()
        head = satellite.schema.binlog.head_lsn
        ingest_jobs(satellite.schema, [make_job(100)])
        mid = satellite.schema.binlog.head_lsn
        ingest_jobs(satellite.schema, [make_job(101)])
        wrapper = inject_apply_faults(
            channel, FaultPlan(poison_lsns={head, mid})
        )
        channel.catch_up()
        assert channel.dead_letters.lsns() == [head, mid]
        wrapper.plan.heal()
        assert channel.replay([mid]) == 1
        assert channel.dead_letters.lsns() == [head]
        assert channel.replay([999]) == 0  # unknown LSN: no-op
        assert channel.replay() == 1
        assert len(channel.dead_letters) == 0

    def test_stats_add_up_under_partial_batches(self):
        channel, satellite = self._channel(retry_policy=RetryPolicy(max_retries=0))
        channel.catch_up()
        syncs_before = channel.stats.syncs
        head = satellite.schema.binlog.head_lsn
        ingest_jobs(satellite.schema, [make_job(100)])
        inject_apply_faults(
            channel, FaultPlan(transient_lsns={head}, transient_burst=1)
        )
        with pytest.raises(ReplicationError):
            channel.pump()
        # the failed sync is still counted...
        assert channel.stats.syncs == syncs_before + 1
        # ...and the failed event was NOT counted as seen (it will be
        # re-polled), so the counters keep adding up
        stats = channel.stats
        assert stats.events_seen == (
            stats.events_applied + stats.events_filtered
            + stats.events_quarantined
        )
        channel.catch_up()  # burst cleared: everything applies
        stats = channel.stats
        assert channel.lag == 0
        assert stats.events_seen == (
            stats.events_applied + stats.events_filtered
            + stats.events_quarantined
        )


class TestDegradedSync:
    """Hub-level isolation: one flaky member never blocks the others."""

    def test_acceptance_scenario(self, three_site_hub):
        """Seeded transient faults on 1 of 3 satellites: healthy members
        stay at zero lag, the flaky circuit opens then recovers, and after
        dead-letter replay the federation is consistent again."""
        hub, satellites = three_site_hub
        flaky = hub.member("site1")
        flaky.breaker = CircuitBreaker(failure_threshold=2, cooldown=2)

        # -- phase 1: transient faults exhaust retries, circuit opens ----
        head = satellites["site1"].schema.binlog.head_lsn
        for name, satellite in satellites.items():
            ingest_jobs(satellite.schema, [make_job(200)])
        # first new site1 event fails its first 5 applies (retry policy
        # does 2 per sync): sync1 fails, sync2 fails -> breaker opens
        wrapper = inject_apply_faults(
            flaky.channel,
            FaultPlan(transient_lsns={head}, transient_burst=5),
        )
        out1 = hub.sync()
        assert out1["site1"].status == "failed"
        assert out1["site0"].status == "applied" and out1["site0"] > 0
        assert out1["site2"].status == "applied" and out1["site2"] > 0
        assert hub.lag()["site0"] == 0 and hub.lag()["site2"] == 0

        out2 = hub.sync()
        assert out2["site1"].status == "failed"
        assert flaky.breaker.state is CircuitState.OPEN

        # -- phase 2: circuit open, member consumes no sync work ---------
        for _ in range(2):
            out = hub.sync()
            assert out["site1"].status == "circuit_open"
            assert hub.lag()["site0"] == 0 and hub.lag()["site2"] == 0
        assert hub.lag()["site1"] > 0  # honest about the flaky member

        # -- phase 3: probe succeeds (burst exhausted), circuit closes ---
        out = hub.sync()
        assert out["site1"].status == "retried"
        assert out["site1"] > 0
        assert flaky.breaker.state is CircuitState.CLOSED
        assert hub.lag()["site1"] == 0

        # -- phase 4: poison event is quarantined, then replayed ---------
        flaky.channel.quarantine = True
        poison_lsn = satellites["site1"].schema.binlog.head_lsn
        ingest_jobs(satellites["site1"].schema, [make_job(300)])
        wrapper.plan.poison_lsns = {poison_lsn}
        out = hub.sync()
        assert out["site1"].status == "quarantined"
        assert flaky.dead_letter_depth == 1
        assert hub.lag()["site1"] == 0  # skipped, not wedged
        assert not check_federation(hub).ok  # quarantine is visible

        wrapper.plan.heal()
        assert flaky.channel.replay() == 1
        check = check_federation(hub)
        assert check.ok  # all members consistent again
        assert flaky.dead_letter_depth == 0

    def test_sync_isolates_hard_failures(self, three_site_hub):
        hub, satellites = three_site_hub
        for satellite in satellites.values():
            ingest_jobs(satellite.schema, [make_job(201)])
        inject_apply_faults(
            hub.member("site2").channel,
            FaultPlan(transient_rate=1.0, transient_burst=10**9),
        )
        out = hub.sync()
        assert out["site2"].status == "failed"
        assert "LSN" in out["site2"].error
        assert out["site0"] > 0 and out["site1"] > 0
        assert sum(out.values()) == int(out["site0"]) + int(out["site1"])

    def test_aggregation_proceeds_over_healthy_members(self, three_site_hub):
        hub, satellites = three_site_hub
        flaky = hub.member("site1")
        flaky.breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        for satellite in satellites.values():
            ingest_jobs(satellite.schema, [make_job(202)])
        inject_apply_faults(
            flaky.channel, FaultPlan(transient_rate=1.0, transient_burst=10**9)
        )
        hub.sync()  # site1 fails, breaker opens
        assert flaky.breaker.state is CircuitState.OPEN
        out = hub.aggregate_federation(["month"])
        assert set(out) == {"site0", "site2"}  # healthy members aggregated
        report = hub.last_aggregation
        assert report.skipped == {"site1": "circuit open"}
        assert not report.complete
        assert "site1" not in report.stale

    def test_aggregation_annotates_stale_and_quarantined(self, three_site_hub):
        hub, satellites = three_site_hub
        member = hub.member("site2")
        member.channel.quarantine = True
        poison = satellites["site2"].schema.binlog.head_lsn
        ingest_jobs(satellites["site2"].schema, [make_job(203)])
        inject_apply_faults(member.channel, FaultPlan(poison_lsns={poison}))
        hub.sync()
        ingest_jobs(satellites["site0"].schema, [make_job(204)])  # now stale
        out = hub.aggregate_federation(["month"])
        assert set(out) == {"site0", "site1", "site2"}
        report = hub.last_aggregation
        assert report.quarantined == {"site2": 1}
        assert report.stale.get("site0", 0) > 0
        assert not report.complete


class TestLooseResilience:
    def test_flipped_byte_rejected_on_ship_via_file(self, tmp_path):
        """Acceptance: a corrupted dump file raises DumpError on load and
        nothing is partially loaded over the previous shipment."""
        satellite = make_satellite("sat")
        hub_db = Database("hub")
        channel = LooseChannel(satellite.schema, hub_db, "fed_sat")
        channel.ship()  # previous good shipment
        good_checksum = hub_db.schema("fed_sat").checksum()

        ingest_jobs(satellite.schema, [make_job(100)])
        path = tmp_path / "sat.dump.gz"
        from repro.warehouse import write_dump_file

        write_dump_file(channel.export(), path)
        corrupt_dump_file(path, mode="payload")

        from repro.warehouse import load_schema, read_dump_file

        with pytest.raises(DumpError):
            load_schema(
                hub_db, read_dump_file(path),
                rename_to="fed_sat", replace=True,
            )
        # previous shipment untouched — no silent partial load
        assert hub_db.schema("fed_sat").checksum() == good_checksum

    def test_ship_via_file_end_to_end_verifies(self, tmp_path):
        satellite = make_satellite("sat")
        hub_db = Database("hub")
        channel = LooseChannel(satellite.schema, hub_db, "fed_sat")
        shipped = channel.ship_via_file(tmp_path / "ok.dump.gz")
        # the shipment is realm-filtered, so compare the replicated tables
        for table in shipped.table_names():
            assert shipped.table(table).checksum() == (
                satellite.schema.table(table).checksum()
            )
        assert "fact_job" in shipped.table_names()

    def test_ship_loose_isolates_member_failures(self, tmp_path):
        hub = FederationHub("hub")
        good = make_satellite("good")
        bad = make_satellite("bad")
        hub.join(good, mode="loose")
        hub.join(bad, mode="loose")
        # sabotage the bad member's export so every shipment fails
        bad_member = hub.member("bad")
        original_export = bad_member.loose_channel.export

        def broken_export():
            dump = original_export()
            dump["checksum"] = "0" * 64  # corrupted in transit
            return dump

        bad_member.loose_channel.export = broken_export
        ingest_jobs(good.schema, [make_job(100)])
        ingest_jobs(bad.schema, [make_job(100)])
        out = hub.ship_loose()
        assert out["good"].status == "applied" and out["good"] > 0
        assert out["bad"].status == "failed"
        assert "checksum" in out["bad"].error
        assert hub.lag()["good"] == 0
        # breaker eventually opens for the persistently bad member
        hub.ship_loose()
        hub.ship_loose()
        out = hub.ship_loose()
        assert out["bad"].status == "circuit_open"

    def test_to_tight_handover_after_failed_shipment(self):
        """A failed re-shipment must not poison the loose->tight handover:
        the channel still resumes from the last *successful* shipment."""
        satellite = make_satellite("sat")
        hub_db = Database("hub")
        channel = LooseChannel(satellite.schema, hub_db, "fed_sat")
        channel.ship()
        lsn_after_good_ship = channel.last_shipped_lsn
        # same resource as the seed jobs: the delta is exactly 2 fact rows
        ingest_jobs(satellite.schema, [
            make_job(100, resource="sat_cluster"),
            make_job(101, resource="sat_cluster"),
        ])

        original_export = channel.export
        channel.export = lambda: {
            **original_export(), "checksum": "0" * 64
        }
        with pytest.raises(DumpError):
            channel.ship()
        # failed shipment recorded nothing
        assert channel.last_shipped_lsn == lsn_after_good_ship
        assert channel.shipments == 1
        channel.export = original_export

        tight = channel.to_tight()
        assert tight.catch_up() == 2  # exactly the two new fact rows
        assert hub_db.schema("fed_sat").table("fact_job").checksum() == (
            satellite.schema.table("fact_job").checksum()
        )


class TestMonitorResilience:
    def test_render_shows_quarantined_member(self, three_site_hub):
        hub, satellites = three_site_hub
        member = hub.member("site1")
        member.channel.quarantine = True
        poison = satellites["site1"].schema.binlog.head_lsn
        ingest_jobs(satellites["site1"].schema, [make_job(100)])
        inject_apply_faults(member.channel, FaultPlan(poison_lsns={poison}))
        hub.sync()
        monitor = FederationMonitor(hub)
        status = monitor.status()
        site1 = next(m for m in status.members if m.name == "site1")
        assert site1.dead_letters == 1
        assert site1.health == "quarantined"
        assert "site1" in status.degraded_members
        text = monitor.render()  # must not crash with a degraded member
        assert "quarantined" in text
        assert "dlq" in text

    def test_status_surfaces_circuit_and_errors(self, three_site_hub):
        hub, satellites = three_site_hub
        flaky = hub.member("site0")
        flaky.breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        ingest_jobs(satellites["site0"].schema, [make_job(100)])
        inject_apply_faults(
            flaky.channel, FaultPlan(transient_rate=1.0, transient_burst=10**9)
        )
        hub.sync()
        status = FederationMonitor(hub).status()
        site0 = next(m for m in status.members if m.name == "site0")
        assert site0.circuit_state == "open"
        assert site0.health == "CIRCUIT-OPEN"
        assert site0.last_error
        text = FederationMonitor(hub).render()
        assert "CIRCUIT-OPEN" in text
        assert "last error" in text

    def test_monitor_survives_member_with_no_schema(self):
        hub = FederationHub("hub")
        satellite = make_satellite("sat")
        hub.join(satellite, mode="loose", initial_sync=False)
        status = FederationMonitor(hub).status()
        member = status.members[0]
        assert member.tables == 0
        assert FederationMonitor(hub).render()  # does not crash