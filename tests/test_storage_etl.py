"""Storage realm ETL: JSON-schema-gated snapshot ingestion."""

from __future__ import annotations

import pytest

from repro.etl import (
    STORAGE_SNAPSHOT_SCHEMA,
    JsonSchemaError,
    ingest_storage_snapshots,
    validate,
)
from repro.timeutil import ts
from repro.warehouse import Database

GOOD_DOC = {
    "resource": "ccr_storage",
    "filesystem": "isilon_home",
    "mountpoint": "/home",
    "resource_type": "persistent",
    "user": "alice",
    "pi": "pi001",
    "system_username": "alice",
    "ts": ts(2017, 3, 1),
    "file_count": 120_000,
    "logical_usage_gb": 42.5,
    "physical_usage_gb": 53.1,
    "soft_quota_gb": 50.0,
    "hard_quota_gb": 100.0,
}


@pytest.fixture()
def schema():
    return Database().create_schema("modw")


class TestSchema:
    def test_good_document_validates(self):
        validate(GOOD_DOC, STORAGE_SNAPSHOT_SCHEMA)

    @pytest.mark.parametrize("missing", [
        "resource", "filesystem", "mountpoint", "resource_type",
        "user", "ts", "file_count", "logical_usage_gb", "physical_usage_gb",
    ])
    def test_required_fields(self, missing):
        doc = {k: v for k, v in GOOD_DOC.items() if k != missing}
        with pytest.raises(JsonSchemaError):
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)

    def test_mountpoint_must_be_absolute(self):
        doc = dict(GOOD_DOC, mountpoint="scratch")
        with pytest.raises(JsonSchemaError):
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)

    def test_resource_type_enum(self):
        doc = dict(GOOD_DOC, resource_type="tape")
        with pytest.raises(JsonSchemaError):
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)

    def test_negative_usage_rejected(self):
        doc = dict(GOOD_DOC, logical_usage_gb=-1.0)
        with pytest.raises(JsonSchemaError):
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)

    def test_fractional_file_count_rejected(self):
        doc = dict(GOOD_DOC, file_count=1.5)
        with pytest.raises(JsonSchemaError):
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)


class TestIngest:
    def test_ingest_good_document(self, schema):
        ingested, rejected = ingest_storage_snapshots(schema, [GOOD_DOC])
        assert (ingested, rejected) == (1, 0)
        row = next(schema.table("fact_storage").rows())
        assert row["filesystem"] == "isilon_home"
        assert row["physical_usage_gb"] == pytest.approx(53.1)
        # shares the jobs star person dimension
        assert len(schema.table("dim_person")) == 1

    def test_strict_raises_on_bad_document(self, schema):
        with pytest.raises(JsonSchemaError):
            ingest_storage_snapshots(schema, [{"nope": 1}])

    def test_lenient_counts_rejections(self, schema):
        docs = [GOOD_DOC, {"nope": 1}, dict(GOOD_DOC, ts=ts(2017, 4, 1))]
        ingested, rejected = ingest_storage_snapshots(schema, docs, strict=False)
        assert (ingested, rejected) == (2, 1)

    def test_optional_quota_defaults(self, schema):
        doc = {k: v for k, v in GOOD_DOC.items()
               if k not in ("soft_quota_gb", "hard_quota_gb", "pi",
                            "system_username")}
        ingest_storage_snapshots(schema, [doc])
        row = next(schema.table("fact_storage").rows())
        # absent quota ingests as NULL (no quota configured), not 0.0 —
        # a literal 0.0 quota is a real sample the aggregator must count
        assert row["soft_quota_gb"] is None
        assert row["hard_quota_gb"] is None
        assert row["system_username"] == "alice"

    def test_simulated_docs_all_validate(self, schema, storage_docs):
        ingested, rejected = ingest_storage_snapshots(schema, storage_docs)
        assert rejected == 0
        assert ingested == len(storage_docs)

    def test_simulated_growth_is_monotonicish(self, storage_docs):
        """Figure 6's shape: persistent usage grows over the window."""
        from collections import defaultdict

        per_ts = defaultdict(float)
        for doc in storage_docs:
            if doc["resource_type"] == "persistent":
                per_ts[doc["ts"]] += doc["physical_usage_gb"]
        series = [per_ts[t] for t in sorted(per_ts)]
        assert series[-1] > series[0]
