"""Hierarchy/science-field drill-downs and federated SUPReMM summaries."""

from __future__ import annotations

import pytest

from repro.core import FederationHub, XdmodInstance, supremm_summary_filter
from repro.etl import ingest_performance
from repro.realms import RealmQueryError, jobs_realm, supremm_realm
from repro.simulators import (
    WorkloadConfig,
    WorkloadGenerator,
    generate_performance_batch,
    simulate_resource,
)
from tests.conftest import T0, T_MAR


class TestHierarchyDimensions:
    @pytest.fixture()
    def instance_with_hierarchy(self, small_resource):
        config = WorkloadConfig(
            seed=31, jobs_per_day=12, max_cores=small_resource.total_cores
        )
        generator = WorkloadGenerator(config)
        records = simulate_resource(
            small_resource, generator.generate(T0, T0 + 10 * 86400)
        )
        instance = XdmodInstance(
            "hier",
            directory=generator.person_directory(),
            science_fields=generator.science_fields(),
        )
        from repro.simulators import to_sacct_log

        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=small_resource.name
        )
        instance.aggregate(["month"])
        return instance

    def test_decanal_unit_partitions_total(self, instance_with_hierarchy):
        realm = jobs_realm()
        schema = instance_with_hierarchy.schema
        total = realm.query(
            schema, "cpu_hours", start=T0, end=T_MAR, view="aggregate",
        ).totals()["total"]
        by_unit = realm.query(
            schema, "cpu_hours", start=T0, end=T_MAR,
            group_by="decanal_unit", view="aggregate",
        ).totals()
        assert sum(by_unit.values()) == pytest.approx(total)
        from repro.simulators import DEFAULT_HIERARCHY

        assert set(by_unit) <= {unit for unit, _ in DEFAULT_HIERARCHY}

    def test_department_finer_than_unit(self, instance_with_hierarchy):
        realm = jobs_realm()
        schema = instance_with_hierarchy.schema
        units = realm.query(
            schema, "n_jobs_ended", start=T0, end=T_MAR,
            group_by="decanal_unit", view="aggregate",
        ).groups()
        departments = realm.query(
            schema, "n_jobs_ended", start=T0, end=T_MAR,
            group_by="department", view="aggregate",
        ).groups()
        assert len(departments) >= len(units)

    def test_science_field_labels(self, instance_with_hierarchy):
        realm = jobs_realm()
        fields = realm.query(
            instance_with_hierarchy.schema, "xdsu", start=T0, end=T_MAR,
            group_by="science_field", view="aggregate",
        ).groups()
        assert fields
        from repro.simulators import DEFAULT_APPLICATIONS

        assert set(fields) <= {a.science_field for a in DEFAULT_APPLICATIONS}

    def test_hierarchy_drilldown(self, instance_with_hierarchy):
        from repro.ui import UsageExplorer

        explorer = UsageExplorer(jobs_realm(), instance_with_hierarchy.schema)
        explorer.configure("cpu_hours", start=T0, end=T_MAR)
        explorer.group_by("decanal_unit")
        units = explorer.fetch().totals()
        top_unit = max(units, key=units.get)
        explorer.drill_down(top_unit, "department")
        departments = explorer.fetch().totals()
        assert sum(departments.values()) == pytest.approx(units[top_unit])


class TestFederatedSupremm:
    @pytest.fixture()
    def perf_federation(self, small_resource):
        from repro.simulators import to_sacct_log

        hub = FederationHub("hub")
        satellites = []
        for i in range(2):
            config = WorkloadConfig(
                seed=40 + i, jobs_per_day=8,
                max_cores=small_resource.total_cores,
            )
            records = simulate_resource(
                small_resource,
                WorkloadGenerator(config).generate(T0, T0 + 7 * 86400),
            )
            instance = XdmodInstance(f"perf{i}")
            instance.pipeline.ingest_sacct(
                to_sacct_log(records), default_resource=small_resource.name
            )
            batch = generate_performance_batch(
                records, small_resource, max_jobs=15
            )
            ingest_performance(instance.schema, batch)
            hub.join(instance, filter=supremm_summary_filter())
            satellites.append(instance)
        return hub, satellites

    def test_summaries_replicate_timeseries_do_not(self, perf_federation):
        hub, _ = perf_federation
        for name in ("fed_perf0", "fed_perf1"):
            schema = hub.database.schema(name)
            assert schema.has_table("fact_job_perf")
            assert len(schema.table("fact_job_perf")) == 15
            assert not schema.has_table("job_timeseries")

    def test_federated_weighted_average(self, perf_federation):
        hub, satellites = perf_federation
        realm = supremm_realm()
        federated = realm.query_federated(
            hub.federated_schemas(), "avg_cpu_user",
            start=T0, end=T_MAR,
        )
        assert federated.rows
        # exact merge check: recompute from both satellites' raw facts
        num = den = 0.0
        for satellite in satellites:
            jobs = {
                (r["resource_id"], r["job_id"]): r
                for r in satellite.schema.table("fact_job").rows()
            }
            for perf in satellite.schema.table("fact_job_perf").rows():
                job = jobs[(perf["resource_id"], perf["job_id"])]
                if job["cpu_hours"] > 0:
                    num += perf["cpu_user_avg"] * job["cpu_hours"]
                    den += job["cpu_hours"]
        expected = num / den
        # collapse to a single period so the one row IS the weighted mean
        whole = realm.query_federated(
            hub.federated_schemas(), "avg_cpu_user",
            start=T0, end=T_MAR, period="year",
        )
        assert len(whole.rows) == 1
        assert whole.rows[0].value == pytest.approx(expected)

    def test_federated_group_by_person(self, perf_federation):
        hub, _ = perf_federation
        realm = supremm_realm()
        result = realm.query_federated(
            hub.federated_schemas(), "avg_mem_used_gb",
            start=T0, end=T_MAR, group_by="person",
        )
        assert result.rows
        for row in result.rows:
            assert row.value >= 0

    def test_federated_grouping_merges_per_member_sums(self, perf_federation):
        """Grouped cells merge numerators/denominators across members.

        Each satellite contributes its own weighted sums per application;
        the federated cell must equal the merged division — never an
        average of the two members' per-application averages.
        """
        hub, satellites = perf_federation
        realm = supremm_realm()
        federated = realm.query_federated(
            hub.federated_schemas(), "avg_flops_gf",
            start=T0, end=T_MAR, period="year", group_by="application",
        )
        acc: dict[str, list[float]] = {}
        for satellite in satellites:
            schema = satellite.schema
            apps = {
                r["app_id"]: r["name"]
                for r in schema.table("dim_application").rows()
            }
            jobs = {
                (r["resource_id"], r["job_id"]): r
                for r in schema.table("fact_job").rows()
            }
            for perf in schema.table("fact_job_perf").rows():
                job = jobs[(perf["resource_id"], perf["job_id"])]
                if job["cpu_hours"] <= 0:
                    continue
                entry = acc.setdefault(apps[job["app_id"]], [0.0, 0.0])
                entry[0] += perf["flops_gf_avg"] * job["cpu_hours"]
                entry[1] += job["cpu_hours"]
        expected = {app: num / den for app, (num, den) in acc.items()}
        got = {row.group: row.value for row in federated.rows}
        assert got.keys() == expected.keys()
        for app, value in expected.items():
            assert got[app] == pytest.approx(value)

    def test_federated_skips_members_without_perf_data(self, perf_federation):
        hub, _ = perf_federation
        realm = supremm_realm()
        sources = dict(hub.federated_schemas())
        baseline = realm.query_federated(
            sources, "avg_cpu_user", start=T0, end=T_MAR
        )
        assert baseline.rows
        # a member with no performance summaries contributes nothing
        # (and does not error the whole federated answer)
        sources["fed_idle"] = XdmodInstance("idle").schema
        with_idle = realm.query_federated(
            sources, "avg_cpu_user", start=T0, end=T_MAR
        )
        assert [
            (r.group, r.period_start, r.value) for r in with_idle.rows
        ] == [(r.group, r.period_start, r.value) for r in baseline.rows]
        # an empty source mapping answers empty, not an error
        empty = realm.query_federated({}, "avg_cpu_user", start=T0, end=T_MAR)
        assert empty.rows == []

    def test_federated_unknown_metric_and_dimension_raise(
        self, perf_federation
    ):
        hub, _ = perf_federation
        realm = supremm_realm()
        with pytest.raises(RealmQueryError):
            realm.query_federated(
                hub.federated_schemas(), "avg_nope", start=T0, end=T_MAR
            )
        with pytest.raises(RealmQueryError):
            realm.query_federated(
                hub.federated_schemas(), "avg_cpu_user",
                start=T0, end=T_MAR, group_by="galaxy",
            )
