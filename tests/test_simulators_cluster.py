"""Cluster scheduler simulator: capacity, ordering, and record sanity."""

from __future__ import annotations



from repro.simulators import QueueSpec, ResourceSpec, WorkloadConfig, WorkloadGenerator, simulate_resource, to_sacct_log
from repro.simulators.workload import JobRequest
from repro.timeutil import SECONDS_PER_HOUR, ts

T0 = ts(2017, 1, 1)


def request(submit, cores, walltime_h, *, fate="COMPLETED", frac=1.0) -> JobRequest:
    return JobRequest(
        submit_ts=submit, user="u", pi="p", application="app",
        nodes=0, cores=cores, req_walltime_s=int(walltime_h * 3600),
        queue="normal", runtime_fraction=frac, fate=fate,
    )


SMALL = ResourceSpec("small", nodes=2, cores_per_node=8,
                     mem_per_node_gb=32, gflops_per_core=10.0)


class TestSchedulerInvariants:
    def test_no_job_starts_before_submit(self, job_records):
        assert all(r.start_ts >= r.submit_ts for r in job_records)

    def test_capacity_never_exceeded(self, job_records, small_resource):
        """Core-count invariant at every start/end event."""
        events = []
        for r in job_records:
            if r.walltime_s <= 0:
                continue
            events.append((r.start_ts, r.cores))
            events.append((r.end_ts, -r.cores))
        events.sort()
        in_use = 0
        for _, delta in events:
            in_use += delta
            assert in_use <= small_resource.total_cores

    def test_states_match_fates(self):
        reqs = [
            request(T0, 4, 1.0, fate="COMPLETED", frac=0.5),
            request(T0 + 10, 4, 1.0, fate="FAILED", frac=0.01),
            request(T0 + 20, 4, 1.0, fate="TIMEOUT"),
            request(T0 + 30, 4, 1.0, fate="CANCELLED", frac=0.0),
        ]
        records = simulate_resource(SMALL, reqs)
        states = sorted(r.state for r in records)
        assert states == ["CANCELLED", "COMPLETED", "FAILED", "TIMEOUT"]

    def test_timeout_runs_to_limit(self):
        records = simulate_resource(SMALL, [request(T0, 4, 2.0, fate="TIMEOUT")])
        assert records[0].walltime_s == 2 * 3600

    def test_cancelled_has_zero_walltime_and_nodes(self):
        records = simulate_resource(
            SMALL, [request(T0, 4, 1.0, fate="CANCELLED", frac=0.0)]
        )
        assert records[0].walltime_s == 0
        assert records[0].nodes == 0

    def test_oversized_request_clamped_to_machine(self):
        records = simulate_resource(SMALL, [request(T0, 9999, 1.0)])
        assert records[0].cores == SMALL.total_cores
        assert records[0].nodes == SMALL.nodes

    def test_queue_walltime_limit_enforced(self):
        resource = ResourceSpec(
            "limited", nodes=2, cores_per_node=8, mem_per_node_gb=32,
            gflops_per_core=10.0,
            queues=(QueueSpec("normal", 2 * SECONDS_PER_HOUR),),
        )
        records = simulate_resource(resource, [request(T0, 4, 100.0)])
        assert records[0].req_walltime_s == 2 * SECONDS_PER_HOUR
        assert records[0].walltime_s <= 2 * SECONDS_PER_HOUR

    def test_fcfs_when_saturated(self):
        """With the machine full, equal jobs start in submit order."""
        reqs = [request(T0 + i, 16, 1.0, frac=1.0) for i in range(4)]
        records = simulate_resource(SMALL, reqs)
        by_submit = sorted(records, key=lambda r: r.submit_ts)
        starts = [r.start_ts for r in by_submit]
        assert starts == sorted(starts)

    def test_backfill_small_job_jumps_queue_without_delaying_head(self):
        # t=0: 15-core job for 4h leaves one core free.
        # t=10: head asks all 16 cores (must wait until 4h).
        # t=20: 1-core 1h job fits the free core and ends before the
        #       head's shadow time, so EASY backfill starts it now.
        reqs = [
            request(T0, 15, 4.0),
            request(T0 + 10, 16, 4.0),
            request(T0 + 20, 1, 1.0),
        ]
        records = {r.job_id: r for r in simulate_resource(SMALL, reqs)}
        head = records[2]
        backfilled = records[3]
        assert backfilled.start_ts < head.start_ts
        # and the head still starts when the first job ends
        assert head.start_ts == records[1].end_ts

    def test_node_count_ceiling_division(self):
        records = simulate_resource(SMALL, [request(T0, 9, 0.5)])
        assert records[0].nodes == 2  # ceil(9 / 8)

    def test_records_sorted_by_end(self, job_records):
        ends = [r.end_ts for r in job_records]
        assert ends == sorted(ends)

    def test_job_ids_unique(self, job_records):
        ids = [r.job_id for r in job_records]
        assert len(set(ids)) == len(ids)


class TestWorkloadGenerator:
    def test_deterministic(self):
        cfg = WorkloadConfig(seed=3, jobs_per_day=20)
        a = list(WorkloadGenerator(cfg).generate(T0, T0 + 3 * 86400))
        b = list(WorkloadGenerator(cfg).generate(T0, T0 + 3 * 86400))
        assert [r.submit_ts for r in a] == [r.submit_ts for r in b]
        assert [r.user for r in a] == [r.user for r in b]

    def test_submit_order_nondecreasing(self):
        reqs = list(
            WorkloadGenerator(WorkloadConfig(seed=1)).generate(T0, T0 + 86400 * 5)
        )
        submits = [r.submit_ts for r in reqs]
        assert submits == sorted(submits)

    def test_monthly_envelope_shapes_volume(self):
        cfg = WorkloadConfig(
            seed=2, jobs_per_day=40,
            monthly_activity=(1.0, 0.0) + (0.0,) * 10,
        )
        reqs = list(WorkloadGenerator(cfg).generate(ts(2017, 1, 1), ts(2017, 3, 1)))
        jan = [r for r in reqs if r.submit_ts < ts(2017, 2, 1)]
        feb = [r for r in reqs if r.submit_ts >= ts(2017, 2, 1)]
        assert len(jan) > 100
        assert len(feb) == 0

    def test_fates_roughly_match_configuration(self):
        cfg = WorkloadConfig(seed=4, jobs_per_day=120, failed_fraction=0.1,
                             timeout_fraction=0.1, cancelled_fraction=0.1)
        reqs = list(WorkloadGenerator(cfg).generate(T0, T0 + 86400 * 20))
        fates = {f: 0 for f in ("COMPLETED", "FAILED", "TIMEOUT", "CANCELLED")}
        for r in reqs:
            fates[r.fate] += 1
        n = len(reqs)
        assert n > 500
        for fate in ("FAILED", "TIMEOUT", "CANCELLED"):
            assert 0.05 < fates[fate] / n < 0.18

    def test_population_hierarchy(self):
        gen = WorkloadGenerator(WorkloadConfig(seed=1, n_pis=6, users_per_pi=3))
        assert len(gen.pis) == 6
        assert len(gen.users) == 18
        pi_names = {p.username for p in gen.pis}
        assert all(u.pi in pi_names for u in gen.users)

    def test_sacct_log_renders_all_records(self, job_records):
        log = to_sacct_log(job_records)
        assert log.count("\n") == len(job_records) + 1  # header + rows
