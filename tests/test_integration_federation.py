"""End-to-end scenario tests mirroring the paper's figures.

These are slower integration tests: full year-or-quarter pipelines through
ingest -> replication -> hub aggregation -> realm queries.
"""

from __future__ import annotations

import pytest

from repro.aggregation import (
    AggregationConfig,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_A,
    TABLE1_INSTANCE_B,
)
from repro.core import (
    FederationHub,
    XdmodInstance,
    check_federation,
    standardize_federation,
)
from repro.realms import cloud_realm, jobs_realm, storage_realm
from repro.simulators import (
    CloudConfig,
    CloudSimulator,
    StorageConfig,
    StorageSimulator,
    WorkloadGenerator,
    figure1_sites,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts
from repro.ui import ChartBuilder


@pytest.fixture(scope="module")
def figure1_federation():
    """Three satellites (comet/stampede2/stampede shapes) over H1 2017."""
    sites = figure1_sites(scale=0.15)
    conversion, _ = standardize_federation(
        {name: preset.resource for name, preset in sites.items()}
    )
    hub = FederationHub("hub", conversion=conversion)
    start, end = ts(2017, 1, 1), ts(2017, 7, 1)
    satellites = {}
    for name, preset in sites.items():
        instance = XdmodInstance(f"site_{name}", conversion=conversion)
        records = simulate_resource(
            preset.resource,
            WorkloadGenerator(preset.workload).generate(start, end),
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=name
        )
        satellites[name] = instance
        hub.join(instance, mode="tight")
    hub.aggregate_federation(["month"])
    return hub, satellites, (start, end)


class TestFigure1Scenario:
    def test_consistency_end_to_end(self, figure1_federation):
        hub, _, _ = figure1_federation
        assert check_federation(hub, strict=True).ok

    def test_three_resources_ranked(self, figure1_federation):
        hub, _, (start, end) = figure1_federation
        result = jobs_realm().query(
            hub.federated_schemas(), "xdsu",
            start=start, end=end, group_by="resource",
        )
        top = result.top(3)
        assert len(top) == 3
        names = [n for n, _ in top]
        assert set(names) == {"comet", "stampede2", "stampede"}

    def test_stampede_transition_visible(self, figure1_federation):
        """Stampede declines over H1 while Stampede2 ramps up."""
        hub, _, (start, end) = figure1_federation
        series = jobs_realm().query(
            hub.federated_schemas(), "xdsu",
            start=start, end=end, group_by="resource",
        ).series()
        stampede = [v or 0 for _, v in series["stampede"]]
        stampede2 = [v or 0 for _, v in series["stampede2"]]
        assert stampede[-1] < stampede[0]
        assert stampede2[-1] > stampede2[0]

    def test_chart_builder_top3(self, figure1_federation):
        hub, _, (start, end) = figure1_federation
        chart = ChartBuilder(jobs_realm(), hub.federated_schemas()).timeseries(
            "xdsu", start=start, end=end, group_by="resource", top_n=3,
            title="Figure 1",
        )
        assert len(chart.series) == 3
        assert len(chart.series[0].points) == 6  # six months


class TestTable1Scenario:
    def test_per_instance_levels_with_hub_superset(self):
        """Instances A and B aggregate with their own wall-time levels;
        the hub re-aggregates the same raw data under Table I's hub bins
        without changing totals."""
        conversion, _ = standardize_federation({})
        instance_a = XdmodInstance(
            "instance_a",
            aggregation=AggregationConfig(walltime_levels=TABLE1_INSTANCE_A),
        )
        instance_b = XdmodInstance(
            "instance_b",
            aggregation=AggregationConfig(walltime_levels=TABLE1_INSTANCE_B),
        )
        from repro.etl import ParsedJob

        def jobs_for(resource, walltimes_h):
            return [
                ParsedJob(
                    job_id=i + 1, user=f"u{i}", pi="p", queue="q",
                    application="a", submit_ts=ts(2017, 3, 1),
                    start_ts=ts(2017, 3, 1, 1),
                    end_ts=ts(2017, 3, 1, 1) + int(h * 3600),
                    nodes=1, cores=2, req_walltime_s=int(h * 3600) + 60,
                    state="COMPLETED", exit_code=0, resource=resource,
                )
                for i, h in enumerate(walltimes_h)
            ]

        # A's resources have a 5h limit; B's a 50h limit
        instance_a.pipeline.ingest_parsed_jobs(jobs_for("res_a", [0.01, 0.5, 3]))
        instance_b.pipeline.ingest_parsed_jobs(jobs_for("res_b", [8, 15, 40]))
        instance_a.aggregate(["month"])
        instance_b.aggregate(["month"])

        a_levels = {
            r["walltime_level"]
            for r in instance_a.schema.table("agg_job_month").rows()
        }
        b_levels = {
            r["walltime_level"]
            for r in instance_b.schema.table("agg_job_month").rows()
        }
        assert a_levels == set(TABLE1_INSTANCE_A.labels)
        assert b_levels == set(TABLE1_INSTANCE_B.labels)

        hub = FederationHub(
            "hub",
            aggregation=AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB),
        )
        hub.join(instance_a)
        hub.join(instance_b)
        hub.aggregate_federation(["month"])
        hub_levels = set()
        total_jobs = 0
        for schema in hub.federated_schemas().values():
            for row in schema.table("agg_job_month").rows():
                hub_levels.add(row["walltime_level"])
                total_jobs += row["n_jobs_ended"]
        assert hub_levels <= set(TABLE1_FEDERATION_HUB.labels)
        assert total_jobs == 6  # no data lost or changed


class TestHeterogeneousRealmsFederation:
    def test_cloud_and_storage_realms_federate(self):
        """Section III: cloud + storage instances in one federation (the
        Aristotle pattern), using an all-realms replication filter."""
        from repro.core import ReplicationFilter

        hub = FederationHub("aristotle_hub")
        start, end = ts(2017, 1, 1), ts(2017, 4, 1)
        for i, site in enumerate(("ccr", "cornell", "ucsb")):
            instance = XdmodInstance(f"cloud_{site}")
            events = CloudSimulator(
                CloudConfig(resource=f"{site}_cloud", seed=30 + i, vms_per_day=3)
            ).generate(start, end)
            instance.pipeline.ingest_cloud(events)
            docs = StorageSimulator(
                StorageConfig(resource=f"{site}_storage", seed=30 + i, n_users=6)
            ).generate(start, end)
            instance.pipeline.ingest_storage(docs)
            hub.join(instance, filter=ReplicationFilter(tables=None))
        hub.aggregate_federation(["month"])

        core_hours = cloud_realm().query(
            hub.federated_schemas(), "core_hours",
            start=start, end=end, group_by="resource", view="aggregate",
        ).totals()
        assert set(core_hours) == {
            "ccr_cloud", "cornell_cloud", "ucsb_cloud",
        }
        usage = storage_realm().query(
            hub.federated_schemas(), "physical_usage_gb",
            start=start, end=end, group_by="resource", view="aggregate",
        ).totals()
        assert set(usage) == {
            "ccr_storage", "cornell_storage", "ucsb_storage",
        }
