"""Instance configuration bundle and the CLI entry points."""

from __future__ import annotations

import json

import pytest

from repro.aggregation import TABLE1_INSTANCE_A
from repro.cli import main
from repro.config import (
    ConfigError,
    FederationSettings,
    InstanceConfig,
    ResourceSettings,
    SsoSettings,
    load_config,
    save_config,
)


class TestConfig:
    def _config(self) -> InstanceConfig:
        return InstanceConfig(
            instance_name="ccr_xdmod",
            organization="University at Buffalo CCR",
            resources=(
                ResourceSettings("ub_hpc", nodes=32, cores_per_node=16,
                                 conversion_factor=2.1),
                ResourceSettings("ccr_cloud", resource_type="cloud"),
            ),
            aggregation_levels=(TABLE1_INSTANCE_A,),
            sso=SsoSettings(kind="shibboleth", issuer="idp.buffalo.edu"),
            federation=FederationSettings(
                hub="national_hub", mode="tight",
                exclude_resources=("secure_enclave",),
            ),
        )

    def test_round_trip(self, tmp_path):
        config = self._config()
        path = save_config(config, tmp_path / "instance.json")
        loaded = load_config(path)
        assert loaded.instance_name == config.instance_name
        assert loaded.resources == config.resources
        assert loaded.aggregation_levels == config.aggregation_levels
        assert loaded.sso == config.sso
        assert loaded.federation == config.federation

    def test_json_is_plain(self, tmp_path):
        path = save_config(self._config(), tmp_path / "c.json")
        data = json.loads(path.read_text())
        assert data["federation"]["hub"] == "national_hub"

    def test_resource_lookup(self):
        config = self._config()
        assert config.resource("ub_hpc").nodes == 32
        with pytest.raises(ConfigError):
            config.resource("ghost")

    @pytest.mark.parametrize("bad", [
        {"resource_type": "quantum"},
        {"conversion_factor": 0.0},
    ])
    def test_bad_resource_settings(self, bad):
        with pytest.raises(ConfigError):
            ResourceSettings("x", **bad)

    def test_bad_sso_kind(self):
        with pytest.raises(ConfigError):
            SsoSettings(kind="carrier_pigeon")

    def test_bad_federation_mode(self):
        with pytest.raises(ConfigError):
            FederationSettings(mode="osmosis")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "nope.json")

    def test_load_bad_levels(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "instance_name": "x",
            "aggregation_levels": [{"name": "broken"}],
        }))
        with pytest.raises(ConfigError):
            load_config(path)


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "CPU hours by queue" in out

    def test_simulate_and_shred(self, tmp_path, capsys):
        log = tmp_path / "jobs.log"
        assert main([
            "simulate", "-o", str(log), "--months", "1", "--scale", "0.1",
        ]) == 0
        assert main(["shred", str(log)]) == 0
        out = capsys.readouterr().out
        assert "parsed" in out and "COMPLETED" in out

    def test_validate(self, tmp_path, capsys):
        good = {
            "resource": "r", "filesystem": "fs", "mountpoint": "/fs",
            "resource_type": "scratch", "user": "u", "ts": 0,
            "file_count": 1, "logical_usage_gb": 1.0,
            "physical_usage_gb": 1.0,
        }
        path = tmp_path / "docs.json"
        path.write_text(json.dumps([good, {"nope": 1}]))
        assert main(["validate", str(path)]) == 1
        assert "1/2 documents valid" in capsys.readouterr().out
        path.write_text(json.dumps(good))
        assert main(["validate", str(path)]) == 0


class TestCliExtended:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "--scale", "0.05"]) == 0
        text = out.read_text()
        assert "# Monthly Utilization Report" in text
        assert "CPU hours by queue" in text

    def test_serve_once(self, capsys):
        assert main(["serve", "--once", "--scale", "0.05", "--port", "0"]) == 0
        assert "XDMoD API listening" in capsys.readouterr().out

    def test_snapshot_cycle(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        assert main(["snapshot", "save", str(snap), "--scale", "0.05"]) == 0
        assert main(["snapshot", "info", str(snap)]) == 0
        assert main(["snapshot", "load", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "binlog head" in out
        assert "restored 'demo'" in out


class TestConfigApply:
    def _config(self, hub_name="national_hub"):
        from repro.aggregation import TABLE1_INSTANCE_B

        return InstanceConfig(
            instance_name="site_b",
            resources=(
                ResourceSettings("res_b", nodes=16, cores_per_node=16,
                                 conversion_factor=2.0),
                ResourceSettings("secure_b", conversion_factor=1.0),
            ),
            aggregation_levels=(TABLE1_INSTANCE_B,),
            federation=FederationSettings(
                hub=hub_name, mode="tight",
                exclude_resources=("secure_b",),
            ),
        )

    def test_build_instance_applies_levels_and_factors(self):
        from repro.aggregation import TABLE1_INSTANCE_B
        from repro.config import build_instance

        instance = build_instance(self._config())
        assert instance.name == "site_b"
        assert instance.aggregation.walltime_levels == TABLE1_INSTANCE_B
        assert instance.pipeline.conversion.factor("res_b") == 2.0

    def test_unknown_level_field_rejected(self):
        from repro.aggregation import AggregationLevel, AggregationLevelSet
        from repro.config import aggregation_from_config

        bogus = AggregationLevelSet(
            "x", "gpu_count", "gpus",
            (AggregationLevel("a", 0, 10),),
        )
        config = InstanceConfig("i", aggregation_levels=(bogus,))
        with pytest.raises(ConfigError):
            aggregation_from_config(config)

    def test_duplicate_level_field_rejected(self):
        from repro.aggregation import TABLE1_INSTANCE_A, TABLE1_INSTANCE_B
        from repro.config import aggregation_from_config

        config = InstanceConfig(
            "i", aggregation_levels=(TABLE1_INSTANCE_A, TABLE1_INSTANCE_B)
        )
        with pytest.raises(ConfigError):
            aggregation_from_config(config)

    def test_join_federation_from_config(self):
        from repro.core import FederationHub
        from repro.config import build_instance, join_federation
        from repro.etl import ParsedJob, ingest_jobs
        from repro.timeutil import ts

        config = self._config()
        instance = build_instance(config)
        ingest_jobs(instance.schema, [
            ParsedJob(
                job_id=i, user="u", pi="p", queue="q", application="a",
                submit_ts=ts(2017, 3, 1), start_ts=ts(2017, 3, 1, 1),
                end_ts=ts(2017, 3, 1, 2), nodes=1, cores=2,
                req_walltime_s=3600, state="COMPLETED", exit_code=0,
                resource=res,
            )
            for i, res in enumerate(("res_b", "secure_b"), start=1)
        ])
        hub = FederationHub("national_hub")
        member = join_federation(hub, instance, config)
        assert member.mode == "tight"
        fed = hub.database.schema(member.fed_schema)
        names = {r["name"] for r in fed.table("dim_resource").rows()}
        assert names == {"res_b"}  # secure_b excluded per the config

    def test_join_wrong_hub_rejected(self):
        from repro.core import FederationHub
        from repro.config import build_instance, join_federation

        config = self._config(hub_name="other_hub")
        with pytest.raises(ConfigError):
            join_federation(
                FederationHub("national_hub"),
                build_instance(config),
                config,
            )

    def test_join_unfederated_rejected(self):
        from repro.core import FederationHub
        from repro.config import build_instance, join_federation

        config = InstanceConfig("loner")
        with pytest.raises(ConfigError):
            join_federation(
                FederationHub("hub"), build_instance(config), config
            )
