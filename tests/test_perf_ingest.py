"""SUPReMM ingestion and the performance simulator."""

from __future__ import annotations

import numpy as np

from repro.etl import HEAVY_TABLES, ingest_performance
from repro.simulators import (
    PERF_METRICS,
    generate_job_performance,
    generate_performance_batch,
    render_job_script,
)
from repro.warehouse import Database


class TestPerfSimulator:
    def test_nine_metrics_present(self, job_records, small_resource):
        record = next(r for r in job_records if r.walltime_s > 3600)
        perf = generate_job_performance(record, small_resource)
        assert set(perf.series) == set(PERF_METRICS)
        assert len(PERF_METRICS) == 9  # the paper's count

    def test_series_lengths_match_walltime(self, job_records, small_resource):
        record = next(r for r in job_records if r.walltime_s > 3600)
        perf = generate_job_performance(record, small_resource, interval_s=300)
        expected = max(2, record.walltime_s // 300)
        assert len(perf.timestamps) == expected
        for values in perf.series.values():
            assert len(values) == expected

    def test_bounded_values(self, job_records, small_resource):
        record = next(r for r in job_records if r.walltime_s > 1800)
        perf = generate_job_performance(record, small_resource)
        cpu = perf.series["cpu_user"] + perf.series["cpu_system"]
        assert np.all(cpu <= 1.0 + 1e-9)
        assert np.all(perf.series["mem_used_gb"] <= small_resource.mem_per_node_gb)
        for values in perf.series.values():
            assert np.all(values >= 0)

    def test_deterministic_given_job(self, job_records, small_resource):
        record = job_records[0] if job_records[0].walltime_s else job_records[1]
        a = generate_job_performance(record, small_resource)
        b = generate_job_performance(record, small_resource)
        for name in PERF_METRICS:
            assert np.array_equal(a.series[name], b.series[name])

    def test_job_script_mentions_geometry(self, job_records):
        record = next(r for r in job_records if r.walltime_s > 0)
        script = render_job_script(record)
        assert f"--ntasks={record.cores}" in script
        assert f"--account={record.pi}" in script
        assert script.startswith("#!/bin/bash")

    def test_batch_skips_never_started(self, job_records, small_resource):
        batch = generate_performance_batch(job_records, small_resource, max_jobs=50)
        assert all(p.job_id for p in batch)
        started = [r for r in job_records if r.walltime_s > 0]
        assert len(batch) == min(50, len(started))

    def test_summary_stats(self, job_records, small_resource):
        record = next(r for r in job_records if r.walltime_s > 3600)
        perf = generate_job_performance(record, small_resource)
        summary = perf.summary()
        for metric in PERF_METRICS:
            assert summary[f"{metric}_avg"] <= summary[f"{metric}_max"] + 1e-12


class TestPerfIngest:
    def test_ingest_creates_fact_and_timeseries(self, job_records, small_resource):
        schema = Database().create_schema("modw")
        batch = generate_performance_batch(job_records, small_resource, max_jobs=10)
        n = ingest_performance(schema, batch)
        assert n == 10
        assert len(schema.table("fact_job_perf")) == 10
        assert len(schema.table("job_timeseries")) == 10
        row = next(schema.table("job_timeseries").rows())
        assert set(row["series"]) == set(PERF_METRICS)
        assert row["job_script"].startswith("#!")

    def test_reingest_upserts(self, job_records, small_resource):
        schema = Database().create_schema("modw")
        batch = generate_performance_batch(job_records, small_resource, max_jobs=5)
        ingest_performance(schema, batch)
        ingest_performance(schema, batch)
        assert len(schema.table("fact_job_perf")) == 5

    def test_timeseries_marked_heavy(self):
        """The table federation must never replicate (Section II-C5)."""
        assert "job_timeseries" in HEAVY_TABLES
