"""Star-schema ingestion: dimensions, facts, idempotency, XD SUs."""

from __future__ import annotations

import pytest

from repro.etl import (
    JOBS_REALM_TABLES,
    ParsedJob,
    PersonInfo,
    create_jobs_star,
    dimension_labels,
    ingest_jobs,
)
from repro.simulators import ConversionTable
from repro.timeutil import ts
from repro.warehouse import Database


def make_job(job_id=1, user="alice", resource="comet", cores=8, **kwargs) -> ParsedJob:
    defaults = dict(
        pi="pi001",
        queue="normal",
        application="namd",
        submit_ts=ts(2017, 1, 1, 8),
        start_ts=ts(2017, 1, 1, 9),
        end_ts=ts(2017, 1, 1, 11),
        nodes=1,
        req_walltime_s=4 * 3600,
        state="COMPLETED",
        exit_code=0,
    )
    defaults.update(kwargs)
    return ParsedJob(job_id=job_id, user=user, resource=resource, cores=cores, **defaults)


@pytest.fixture()
def schema():
    return Database().create_schema("modw")


class TestStarCreation:
    def test_all_tables_created(self, schema):
        create_jobs_star(schema)
        for name in JOBS_REALM_TABLES:
            assert schema.has_table(name)

    def test_idempotent(self, schema):
        create_jobs_star(schema)
        create_jobs_star(schema)  # no DuplicateObjectError


class TestIngest:
    def test_dimensions_populated(self, schema):
        directory = {"alice": PersonInfo(full_name="Alice A", pi="pi001",
                                         decanal_unit="Engineering",
                                         department="CS")}
        n = ingest_jobs(schema, [make_job()], directory=directory,
                        science_fields={"namd": "Molecular Biosciences"})
        assert n == 1
        person = next(schema.table("dim_person").rows())
        assert person["decanal_unit"] == "Engineering"
        app = next(schema.table("dim_application").rows())
        assert app["science_field"] == "Molecular Biosciences"
        queue = next(schema.table("dim_queue").rows())
        assert (queue["name"], queue["resource"]) == ("normal", "comet")

    def test_fact_measures(self, schema):
        conv = ConversionTable({"comet": 3.0})
        ingest_jobs(schema, [make_job()], conversion=conv)
        fact = next(schema.table("fact_job").rows())
        assert fact["walltime_s"] == 2 * 3600
        assert fact["wait_s"] == 3600
        assert fact["cpu_hours"] == pytest.approx(16.0)  # 8 cores x 2h
        assert fact["xdsu"] == pytest.approx(48.0)  # conversion factor 3

    def test_unstandardized_resource_factor_one(self, schema):
        ingest_jobs(schema, [make_job()])
        fact = next(schema.table("fact_job").rows())
        assert fact["xdsu"] == pytest.approx(fact["cpu_hours"])

    def test_reingest_is_idempotent(self, schema):
        jobs = [make_job(job_id=i) for i in range(5)]
        assert ingest_jobs(schema, jobs) == 5
        assert ingest_jobs(schema, jobs) == 0
        assert len(schema.table("fact_job")) == 5

    def test_same_job_id_on_different_resources(self, schema):
        ingest_jobs(schema, [make_job(job_id=1, resource="comet"),
                             make_job(job_id=1, resource="stampede")])
        assert len(schema.table("fact_job")) == 2
        assert len(schema.table("dim_resource")) == 2

    def test_dimension_ids_stable_across_batches(self, schema):
        ingest_jobs(schema, [make_job(job_id=1)])
        first = next(schema.table("dim_person").rows())["person_id"]
        ingest_jobs(schema, [make_job(job_id=2)])
        people = list(schema.table("dim_person").rows())
        assert len(people) == 1 and people[0]["person_id"] == first

    def test_dimension_labels_helper(self, schema):
        ingest_jobs(schema, [make_job()])
        labels = dimension_labels(schema, "dim_resource")
        assert list(labels.values()) == ["comet"]

    def test_conversion_factor_recorded_on_dim(self, schema):
        conv = ConversionTable({"comet": 2.5})
        ingest_jobs(schema, [make_job()], conversion=conv)
        res = next(schema.table("dim_resource").rows())
        assert res["conversion_factor"] == pytest.approx(2.5)
