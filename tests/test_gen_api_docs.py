"""tools/gen_api_docs.py: golden-output and failure-mode coverage."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def gen_api_docs():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", os.path.join(REPO_ROOT, "tools", "gen_api_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGenerate:
    def test_golden_output_matches_committed_api_md(self, gen_api_docs):
        committed = open(
            os.path.join(REPO_ROOT, "docs", "API.md"), encoding="utf-8"
        ).read()
        assert gen_api_docs.generate() == committed, (
            "docs/API.md is stale; regenerate with "
            "`python tools/gen_api_docs.py`"
        )

    def test_structure(self, gen_api_docs):
        text = gen_api_docs.generate(["repro.analysis"])
        assert text.startswith("# API reference")
        assert "## `repro.analysis`" in text
        assert "| `LintEngine` | class |" in text
        assert "| `build_default_catalog` | function |" in text
        # footer is always appended
        assert "## Aggregation fast path" in text

    def test_module_without_all_uses_public_names(self, gen_api_docs, tmp_path):
        pkg = tmp_path / "fake_noall_pkg.py"
        pkg.write_text('"""Fake module."""\n\ndef visible():\n    pass\n')
        sys.path.insert(0, str(tmp_path))
        try:
            text = gen_api_docs.generate(["fake_noall_pkg"])
        finally:
            sys.path.remove(str(tmp_path))
        # no __all__ and no repro-owned members: section header only
        assert "## `fake_noall_pkg`" in text
        assert "Fake module." in text


class TestFailureModes:
    def test_generate_raises_on_non_importing_module(self, gen_api_docs):
        with pytest.raises(ImportError):
            gen_api_docs.generate(["repro.no_such_subpackage"])

    def test_main_turns_import_error_into_exit_1(
        self, gen_api_docs, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            gen_api_docs, "PACKAGES", ["repro.no_such_subpackage"]
        )
        assert gen_api_docs.main(["--output", "-"]) == 1
        err = capsys.readouterr().err
        assert "cannot import" in err

    def test_main_writes_output_file(self, gen_api_docs, tmp_path, monkeypatch):
        monkeypatch.setattr(gen_api_docs, "PACKAGES", ["repro.timeutil"])
        out = tmp_path / "API.md"
        assert gen_api_docs.main(["--output", str(out)]) == 0
        assert out.read_text().startswith("# API reference")
