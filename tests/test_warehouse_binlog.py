"""Binary log: LSNs, cursors, and the replay-determinism invariant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.warehouse import (
    Binlog,
    BinlogCursor,
    BinlogError,
    ColumnType,
    Database,
    EventType,
    TableSchema,
    make_columns,
    row_event_filter,
)

C = ColumnType


class TestBinlog:
    def test_lsns_monotonic_from_zero(self):
        log = Binlog()
        events = [log.append(EventType.INSERT, "t", {"row": {"i": i}}) for i in range(5)]
        assert [e.lsn for e in events] == [0, 1, 2, 3, 4]
        assert log.head_lsn == 5

    def test_read_from(self):
        log = Binlog()
        for i in range(10):
            log.append(EventType.INSERT, "t", {"row": {"i": i}})
        chunk = log.read_from(7)
        assert [e.lsn for e in chunk] == [7, 8, 9]
        assert log.read_from(3, limit=2)[0].lsn == 3
        assert len(log.read_from(3, limit=2)) == 2
        assert log.read_from(100) == []

    def test_negative_lsn_rejected(self):
        with pytest.raises(BinlogError):
            Binlog().read_from(-1)

    def test_event_round_trip(self):
        log = Binlog()
        event = log.append(EventType.UPDATE, "t", {"key": [1], "row": {"a": 2}})
        clone = type(event).from_dict(event.to_dict())
        assert clone == event

    def test_checksum_changes_with_content(self):
        log1, log2 = Binlog(), Binlog()
        log1.append(EventType.INSERT, "t", {"row": {"a": 1}})
        log2.append(EventType.INSERT, "t", {"row": {"a": 2}})
        assert log1.checksum() != log2.checksum()


class TestCursor:
    def test_poll_and_commit(self):
        log = Binlog()
        for i in range(4):
            log.append(EventType.INSERT, "t", {"row": {"i": i}})
        cursor = BinlogCursor(log)
        assert cursor.lag == 4
        events = cursor.poll(2)
        assert [e.lsn for e in events] == [0, 1]
        cursor.commit(events[-1].lsn)
        assert cursor.position == 2 and cursor.lag == 2

    def test_commit_backwards_rejected(self):
        log = Binlog()
        for i in range(5):
            log.append(EventType.INSERT, "t", {})
        cursor = BinlogCursor(log, start_lsn=4)
        with pytest.raises(BinlogError):
            cursor.commit(1)

    def test_commit_is_monotonic_not_strict(self):
        log = Binlog()
        for i in range(3):
            log.append(EventType.INSERT, "t", {})
        cursor = BinlogCursor(log)
        cursor.commit(1)
        cursor.commit(1)  # re-commit same position is fine (at-least-once)
        assert cursor.position == 2

    def test_seek(self):
        log = Binlog()
        for i in range(3):
            log.append(EventType.INSERT, "t", {})
        cursor = BinlogCursor(log, start_lsn=3)
        cursor.seek(0)
        assert cursor.lag == 3
        with pytest.raises(BinlogError):
            cursor.seek(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(BinlogError):
            BinlogCursor(Binlog(), start_lsn=-2)


class TestRowEventFilter:
    def test_ddl_always_kept(self):
        log = Binlog()
        e1 = log.append(EventType.CREATE_TABLE, "t", {})
        e2 = log.append(EventType.INSERT, "t", {"row": {"x": 1}})
        kept = row_event_filter(lambda e: False, [e1, e2])
        assert kept == [e1]


# -- property-based replay determinism ---------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 20), st.integers(0, 100)),
        st.tuples(st.just("upsert"), st.integers(0, 20), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 20), st.just(0)),
        st.tuples(st.just("truncate"), st.just(0), st.just(0)),
    ),
    max_size=60,
)


def _apply_ops(ops):
    db = Database()
    schema = db.create_schema("src")
    table = schema.create_table(
        TableSchema(
            "t",
            make_columns([("k", C.INT, False), ("v", C.INT)]),
            primary_key=("k",),
        )
    )
    for op, k, v in ops:
        if op == "insert":
            if table.get((k,)) is None:
                table.insert({"k": k, "v": v})
        elif op == "upsert":
            table.upsert({"k": k, "v": v})
        elif op == "delete":
            table.delete_where(lambda r, k=k: r["k"] == k)
        else:
            table.truncate()
    return schema, table


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_replay_from_zero_reproduces_state(ops):
    """Invariant 4 (DESIGN.md): full binlog replay == source state."""
    schema, table = _apply_ops(ops)
    db2 = Database()
    target = db2.create_schema("dst")
    for event in schema.binlog:
        target.apply_event(event)
    assert target.table("t").checksum() == table.checksum()


@settings(max_examples=40, deadline=None)
@given(ops=_ops, resume_at=st.integers(0, 30))
def test_resume_overlap_is_idempotent(ops, resume_at):
    """Re-applying an already-applied suffix never corrupts the target."""
    schema, table = _apply_ops(ops)
    events = list(schema.binlog)
    db2 = Database()
    target = db2.create_schema("dst")
    for event in events:
        target.apply_event(event)
    # replay an arbitrary suffix again (at-least-once delivery)
    for event in events[min(resume_at, len(events)):]:
        target.apply_event(event)
    assert target.table("t").checksum() == table.checksum()
