"""Fault injection: deterministic failures for schemas, cursors, dumps."""

from __future__ import annotations

import pytest

from repro.core import (
    FaultPlan,
    FaultySchema,
    LooseChannel,
    PoisonApplyFault,
    ReplicationChannel,
    ReplicationError,
    RetryPolicy,
    TransientApplyFault,
    corrupt_dump_file,
    inject_apply_faults,
    stall_binlog,
    truncate_dump_file,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database, DumpError, dump_schema, read_dump_file
from repro.warehouse.dump import dump_checksum


def make_job(job_id, resource="r1"):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 1, 1), start_ts=ts(2017, 1, 1, 1),
        end_ts=ts(2017, 1, 1, 3), nodes=1, cores=2, req_walltime_s=7200,
        state="COMPLETED", exit_code=0, resource=resource,
    )


@pytest.fixture()
def satellite_schema():
    schema = Database("sat").create_schema("modw")
    ingest_jobs(schema, [make_job(i) for i in range(5)])
    return schema


class TestFaultPlan:
    def test_transient_rate_is_seed_deterministic(self):
        a = FaultPlan(seed=11, transient_rate=0.4)
        b = FaultPlan(seed=11, transient_rate=0.4)
        c = FaultPlan(seed=12, transient_rate=0.4)
        picks_a = [a.is_transient(lsn) for lsn in range(200)]
        assert picks_a == [b.is_transient(lsn) for lsn in range(200)]
        assert picks_a != [c.is_transient(lsn) for lsn in range(200)]
        assert 0 < sum(picks_a) < 200  # the rate actually selects a subset

    def test_transient_clears_after_burst(self):
        plan = FaultPlan(transient_lsns={5}, transient_burst=2)
        assert isinstance(plan.should_fail(5, 0), TransientApplyFault)
        assert isinstance(plan.should_fail(5, 1), TransientApplyFault)
        assert plan.should_fail(5, 2) is None
        assert plan.should_fail(6, 0) is None

    def test_poison_fails_until_healed(self):
        plan = FaultPlan(poison_lsns={9})
        assert isinstance(plan.should_fail(9, 0), PoisonApplyFault)
        assert isinstance(plan.should_fail(9, 99), PoisonApplyFault)
        plan.heal(9)
        assert plan.should_fail(9, 100) is None

    def test_heal_all(self):
        plan = FaultPlan(poison_lsns={1, 2})
        plan.heal()
        assert plan.should_fail(1, 0) is None
        assert plan.should_fail(2, 0) is None


class TestFaultySchema:
    def test_delegates_everything_else(self, satellite_schema):
        hub = Database("hub").create_schema("fed_sat")
        faulty = FaultySchema(hub, FaultPlan())
        assert faulty.name == "fed_sat"
        assert faulty.table_names() == []

    def test_transient_fault_absorbed_by_retry(self, satellite_schema):
        hub_db = Database("hub")
        target = hub_db.create_schema("fed_sat")
        channel = ReplicationChannel(
            satellite_schema, target,
            retry_policy=RetryPolicy(max_retries=2, seed=0),
        )
        head = satellite_schema.binlog.head_lsn
        wrapper = inject_apply_faults(
            channel, FaultPlan(transient_lsns=set(range(head)), transient_burst=1)
        )
        applied = channel.catch_up()
        assert applied > 0
        assert channel.lag == 0
        assert wrapper.faults_raised > 0
        assert channel.stats.retries >= wrapper.faults_raised
        assert target.table("fact_job").checksum() == (
            satellite_schema.table("fact_job").checksum()
        )

    def test_fault_beyond_retries_surfaces(self, satellite_schema):
        channel = ReplicationChannel(
            satellite_schema, Database("hub").create_schema("fed_sat"),
            retry_policy=RetryPolicy(max_retries=1),
        )
        head = satellite_schema.binlog.head_lsn
        inject_apply_faults(
            channel,
            FaultPlan(transient_lsns=set(range(head)), transient_burst=10),
        )
        with pytest.raises(ReplicationError):
            channel.pump()


class TestStalledCursor:
    def test_stall_then_resume(self, satellite_schema):
        hub_db = Database("hub")
        channel = ReplicationChannel(
            satellite_schema, hub_db.create_schema("fed_sat")
        )
        wrapper = stall_binlog(channel, polls=2)
        assert channel.pump() == 0  # stalled: nothing delivered
        assert channel.lag > 0  # but lag is still visible
        assert channel.pump() == 0
        assert not wrapper.stalled
        assert channel.catch_up() > 0  # stall cleared: catches up fully
        assert channel.lag == 0

    def test_catch_up_does_not_spin_while_stalled(self, satellite_schema):
        channel = ReplicationChannel(
            satellite_schema, Database("hub").create_schema("fed_sat")
        )
        stall_binlog(channel, polls=10**6)
        assert channel.catch_up() == 0  # bails out instead of spinning
        assert channel.lag > 0


class TestDumpDamage:
    def test_dump_checksum_matches_schema_checksum(self, satellite_schema):
        dump = dump_schema(satellite_schema)
        assert dump_checksum(dump) == satellite_schema.checksum()
        assert dump["checksum"] == dump_checksum(dump)

    def test_payload_corruption_caught_by_checksum(
        self, satellite_schema, tmp_path
    ):
        path = tmp_path / "sat.dump.gz"
        channel = LooseChannel(satellite_schema, Database("hub"), "fed_sat")
        channel.ship_via_file(path)
        corrupt_dump_file(path, seed=3, mode="payload")
        received = read_dump_file(path)  # still parses...
        assert dump_checksum(received) != received["checksum"]  # ...but lies

    def test_raw_corruption_breaks_parse_or_framing(
        self, satellite_schema, tmp_path
    ):
        path = tmp_path / "sat.dump.gz"
        LooseChannel(satellite_schema, Database("hub"), "fed_sat").ship_via_file(
            path
        )
        corrupt_dump_file(path, seed=4, mode="raw")
        with pytest.raises(DumpError):
            read_dump_file(path)

    def test_truncated_file_rejected(self, satellite_schema, tmp_path):
        path = tmp_path / "sat.dump.gz"
        LooseChannel(satellite_schema, Database("hub"), "fed_sat").ship_via_file(
            path
        )
        truncate_dump_file(path, keep_fraction=0.5)
        with pytest.raises(DumpError):
            read_dump_file(path)

    def test_corruption_is_deterministic(self, satellite_schema, tmp_path):
        (tmp_path / "d1").mkdir()
        (tmp_path / "d2").mkdir()
        a, b = tmp_path / "d1" / "x.gz", tmp_path / "d2" / "x.gz"
        channel = LooseChannel(satellite_schema, Database("hub"), "fed_sat")
        channel.ship_via_file(a)
        channel.ship_via_file(b)
        corrupt_dump_file(a, seed=7, mode="payload")
        corrupt_dump_file(b, seed=7, mode="payload")
        # same seed, same source bytes => byte-identical damage
        assert read_dump_file(a) == read_dump_file(b)

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "x"
        path.write_bytes(b"123")
        with pytest.raises(ValueError):
            corrupt_dump_file(path, mode="nope")
        with pytest.raises(ValueError):
            truncate_dump_file(path, keep_fraction=1.5)

# -- trace propagation under faults -------------------------------------------


class TestTraceUnderFaults:
    """Quarantine and replay keep the federated trace story intact."""

    def _traced_setup(self):
        from repro.obs import FakeClock, Observability

        sat_obs = Observability(
            clock=FakeClock(auto_advance=0.001), name="sat"
        )
        schema = Database(
            "sat", trace_provider=sat_obs.tracer.current_context
        ).create_schema("modw")
        with sat_obs.tracer.span("ingest_batch"):
            ingest_jobs(schema, [make_job(i) for i in range(5)])
        hub_obs = Observability(
            clock=FakeClock(auto_advance=0.001), name="hub"
        )
        target = Database("hub").create_schema("fed_sat")
        channel = ReplicationChannel(
            schema, target, quarantine=True, obs=hub_obs, name="sat"
        )
        poison = schema.binlog.head_lsn - 1  # the final fact insert
        wrapper = inject_apply_faults(channel, FaultPlan(poison_lsns={poison}))
        return sat_obs, hub_obs, channel, wrapper, poison

    def test_quarantined_event_keeps_its_trace_context(self):
        sat_obs, _, channel, _, poison = self._traced_setup()
        channel.catch_up()
        letter = channel.dead_letters.get(poison)
        assert letter.trace is not None
        assert letter.trace.instance == "sat"
        assert letter.trace.trace_id.startswith("sat:")
        # the context names the span that was live at binlog append time
        ingest = [
            s for s in sat_obs.tracer.finished if s.name == "ingest_batch"
        ]
        assert letter.trace.qualified_span == ingest[0].qualified_id

    def test_replay_relinks_into_the_original_trace(self):
        from repro.obs import FederatedTraceAssembler

        sat_obs, hub_obs, channel, wrapper, poison = self._traced_setup()
        channel.catch_up()
        letter = channel.dead_letters.get(poison)
        wrapper.plan.heal()
        assert channel.replay() == 1
        assert poison not in channel.dead_letters
        replays = [
            s for s in hub_obs.tracer.finished
            if s.name == "dead_letter_replay"
        ]
        assert len(replays) == 1
        assert replays[0].trace_id == letter.trace.trace_id
        assert replays[0].remote_parent == letter.trace.qualified_span
        # quarantine + replay assemble into the satellite's ingest trace
        assembler = FederatedTraceAssembler(hub_obs.tracer, sat_obs.tracer)
        assert any(
            s.name == "dead_letter_replay"
            for s in assembler.reparented_spans(letter.trace.trace_id)
        )
