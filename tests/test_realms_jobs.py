"""HPC Jobs realm: metric math, drill-down, fan-in equivalence."""

from __future__ import annotations

import pytest

from repro.realms import RealmQueryError, jobs_realm
from repro.timeutil import ts
from tests.conftest import T0

END = ts(2017, 6, 1)


@pytest.fixture()
def realm():
    return jobs_realm()


class TestSingleInstanceQueries:
    def test_total_cpu_hours_matches_fact_table(self, aggregated_instance, realm):
        schema = aggregated_instance.schema
        result = realm.query(
            schema, "cpu_hours", start=T0, end=END, view="aggregate"
        )
        expected = sum(r["cpu_hours"] for r in schema.table("fact_job").rows())
        assert result.totals()["total"] == pytest.approx(expected)

    def test_timeseries_vs_aggregate_views_agree(self, aggregated_instance, realm):
        schema = aggregated_instance.schema
        series = realm.query(schema, "cpu_hours", start=T0, end=END)
        agg = realm.query(
            schema, "cpu_hours", start=T0, end=END, view="aggregate"
        )
        assert sum(series.totals().values()) == pytest.approx(
            sum(agg.totals().values())
        )

    def test_group_by_resource_labels(self, aggregated_instance, realm):
        result = realm.query(
            aggregated_instance.schema, "n_jobs_ended",
            start=T0, end=END, group_by="resource",
        )
        assert result.groups() == ["testcluster"]

    def test_group_by_queue_partitions_total(self, aggregated_instance, realm):
        schema = aggregated_instance.schema
        total = realm.query(
            schema, "cpu_hours", start=T0, end=END, view="aggregate"
        ).totals()["total"]
        by_queue = realm.query(
            schema, "cpu_hours", start=T0, end=END,
            group_by="queue", view="aggregate",
        ).totals()
        assert sum(by_queue.values()) == pytest.approx(total)

    def test_filter_restricts_to_group(self, aggregated_instance, realm):
        schema = aggregated_instance.schema
        by_queue = realm.query(
            schema, "n_jobs_ended", start=T0, end=END,
            group_by="queue", view="aggregate",
        ).totals()
        queue = next(iter(by_queue))
        filtered = realm.query(
            schema, "n_jobs_ended", start=T0, end=END,
            filters={"queue": [queue]}, view="aggregate",
        ).totals()
        assert filtered["total"] == by_queue[queue]

    def test_ratio_metric_is_quotient_of_sums(self, aggregated_instance, realm):
        schema = aggregated_instance.schema
        cpu = realm.query(schema, "cpu_hours", start=T0, end=END,
                          view="aggregate").totals()["total"]
        jobs = realm.query(schema, "n_jobs_ended", start=T0, end=END,
                           view="aggregate").totals()["total"]
        avg = realm.query(schema, "avg_cpu_hours", start=T0, end=END,
                          view="aggregate").totals()["total"]
        assert avg == pytest.approx(cpu / jobs)

    def test_walltime_level_dimension(self, aggregated_instance, realm):
        result = realm.query(
            aggregated_instance.schema, "n_jobs_ended",
            start=T0, end=END, group_by="walltime_level", view="aggregate",
        )
        from repro.aggregation import DEFAULT_WALLTIME_LEVELS

        assert set(result.groups()) <= set(DEFAULT_WALLTIME_LEVELS.labels) | {"outside"}

    def test_unknown_metric_and_dimension_rejected(self, aggregated_instance, realm):
        with pytest.raises(RealmQueryError):
            realm.query(aggregated_instance.schema, "nope", start=T0, end=END)
        with pytest.raises(RealmQueryError):
            realm.query(
                aggregated_instance.schema, "cpu_hours",
                start=T0, end=END, group_by="nope",
            )

    def test_empty_range_rejected(self, aggregated_instance, realm):
        with pytest.raises(RealmQueryError):
            realm.query(aggregated_instance.schema, "cpu_hours", start=END, end=T0)

    def test_missing_agg_table_returns_empty(self, instance, realm):
        # no aggregation ran yet
        result = realm.query(instance.schema, "cpu_hours", start=T0, end=END)
        assert result.rows == []


class TestFederatedQueries:
    def test_fan_in_equivalence(self, federation, realm):
        """Invariant 3: federated totals == sum over satellites."""
        hub, satellites, _, _ = federation
        hub.aggregate_federation(["month"])
        fed_total = realm.query(
            hub.federated_schemas(), "cpu_hours",
            start=T0, end=END, view="aggregate",
        ).totals()["total"]
        sat_total = 0.0
        for satellite in satellites.values():
            satellite.aggregate(["month"])
            sat_total += realm.query(
                satellite.schema, "cpu_hours",
                start=T0, end=END, view="aggregate",
            ).totals()["total"]
        assert fed_total == pytest.approx(sat_total)

    def test_person_dimension_qualified_on_hub(self, federation, realm):
        """Section II-D4: same username appears once per instance."""
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        result = realm.query(
            hub.federated_schemas(), "n_jobs_ended",
            start=T0, end=END, group_by="person", view="aggregate",
        )
        assert all("@" in g for g in result.groups())
        instances = {g.split("@")[1] for g in result.groups()}
        assert instances == {"site0", "site1"}

    def test_identity_map_merges_hub_person_groups(self, federation, realm):
        from repro.core import IdentityMap

        hub, satellites, _, _ = federation
        hub.aggregate_federation(["month"])
        users = {
            name: [r["username"] for r in s.schema.table("dim_person").rows()]
            for name, s in satellites.items()
        }
        idmap = IdentityMap.from_username_match(users)
        unmapped = realm.query(
            hub.federated_schemas(), "n_jobs_ended",
            start=T0, end=END, group_by="person", view="aggregate",
        )
        mapped = realm.query(
            hub.federated_schemas(), "n_jobs_ended",
            start=T0, end=END, group_by="person", view="aggregate",
            idmap=idmap,
        )
        assert len(mapped.groups()) < len(unmapped.groups())
        assert sum(mapped.totals().values()) == sum(unmapped.totals().values())

    def test_resource_dimension_not_qualified(self, federation, realm):
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        result = realm.query(
            hub.federated_schemas(), "xdsu",
            start=T0, end=END, group_by="resource", view="aggregate",
        )
        assert set(result.groups()) == {"alpha_cluster", "beta_cluster"}

    def test_top_ranking(self, federation, realm):
        hub, _, _, _ = federation
        hub.aggregate_federation(["month"])
        result = realm.query(
            hub.federated_schemas(), "cpu_hours",
            start=T0, end=END, group_by="resource",
        )
        top = result.top(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
