"""Query engine: predicates, aggregation, ordering, joins."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.warehouse import (
    Agg,
    ColumnType,
    Database,
    P,
    Query,
    QueryError,
    TableSchema,
    hash_join,
    make_columns,
    vector_group_sum,
)

C = ColumnType


@pytest.fixture()
def table():
    db = Database()
    schema = db.create_schema("modw")
    t = schema.create_table(
        TableSchema(
            "jobs",
            make_columns([
                ("job_id", C.INT, False),
                ("resource", C.STR, False),
                ("user", C.STR, False),
                ("cpu_hours", C.FLOAT),
                ("cores", C.INT),
            ]),
            primary_key=("job_id",),
        )
    )
    rows = [
        (1, "comet", "alice", 10.0, 4),
        (2, "comet", "bob", 5.0, 8),
        (3, "comet", "alice", None, 2),
        (4, "stampede", "bob", 7.5, 16),
        (5, "stampede", "carol", 2.5, 1),
    ]
    for job_id, resource, user, cpu, cores in rows:
        t.insert(
            {"job_id": job_id, "resource": resource, "user": user,
             "cpu_hours": cpu, "cores": cores}
        )
    return t


class TestPredicates:
    def test_eq_and_combinators(self, table):
        rows = Query(table).where(
            P.eq("resource", "comet") & ~P.eq("user", "bob")
        ).run()
        assert sorted(r["job_id"] for r in rows) == [1, 3]

    def test_or(self, table):
        rows = Query(table).where(
            P.eq("user", "carol") | P.eq("user", "alice")
        ).run()
        assert sorted(r["job_id"] for r in rows) == [1, 3, 5]

    def test_comparisons_ignore_null(self, table):
        rows = Query(table).where(P.gt("cpu_hours", 6.0)).run()
        assert sorted(r["job_id"] for r in rows) == [1, 4]

    def test_between_half_open(self, table):
        rows = Query(table).where(P.between("cores", 4, 16)).run()
        assert sorted(r["job_id"] for r in rows) == [1, 2]

    def test_isin_and_nulls(self, table):
        assert len(Query(table).where(P.isin("user", ["alice"])).run()) == 2
        assert [r["job_id"] for r in Query(table).where(P.isnull("cpu_hours")).run()] == [3]
        assert len(Query(table).where(P.notnull("cpu_hours")).run()) == 4


class TestAggregates:
    def test_group_by_sum_count(self, table):
        rows = Query(table).group_by("resource").aggregate(
            total=Agg.sum("cpu_hours"), n=Agg.count()
        ).order_by("resource").run()
        assert rows == [
            {"resource": "comet", "total": 15.0, "n": 3},
            {"resource": "stampede", "total": 10.0, "n": 2},
        ]

    def test_avg_skips_nulls(self, table):
        value = Query(table).aggregate(avg=Agg.avg("cpu_hours")).scalar("avg")
        assert value == pytest.approx((10 + 5 + 7.5 + 2.5) / 4)

    def test_min_max_count_distinct(self, table):
        row = Query(table).aggregate(
            lo=Agg.min("cores"), hi=Agg.max("cores"),
            users=Agg.count_distinct("user"),
        ).run()[0]
        assert (row["lo"], row["hi"], row["users"]) == (1, 16, 3)

    def test_weighted_avg(self, table):
        value = Query(table).aggregate(
            w=Agg.weighted_avg("cpu_hours", "cores")
        ).scalar()
        expected = (10 * 4 + 5 * 8 + 7.5 * 16 + 2.5 * 1) / (4 + 8 + 16 + 1)
        assert value == pytest.approx(expected)

    def test_empty_group_aggregate_none(self, table):
        rows = Query(table).where(P.eq("resource", "nope")).aggregate(
            total=Agg.sum("cpu_hours")
        ).run()
        assert rows == []

    def test_invalid_aggregate_rejected(self):
        with pytest.raises(QueryError):
            Query([]).aggregate(x=Agg.sum("a").__class__("bogus", "a"))


class TestOrderingAndLimits:
    def test_order_by_descending_and_limit(self, table):
        rows = Query(table).select("job_id", "cpu_hours").order_by(
            "cpu_hours", descending=True
        ).limit(2).run()
        assert [r["job_id"] for r in rows] == [1, 4]

    def test_nulls_sort_last(self, table):
        rows = Query(table).order_by("cpu_hours").run()
        assert rows[-1]["job_id"] == 3

    def test_negative_limit_rejected(self, table):
        with pytest.raises(QueryError):
            Query(table).limit(-1)

    def test_derive(self, table):
        rows = (
            Query(table)
            .derive(per_core=lambda r: (r["cpu_hours"] or 0) / r["cores"])
            .where(P.gt("per_core", 2.0))
            .run()
        )
        assert sorted(r["job_id"] for r in rows) == [1, 5]

    def test_scalar_shape_enforced(self, table):
        with pytest.raises(QueryError):
            Query(table).scalar()


class TestHashJoin:
    def test_inner_join(self):
        facts = [{"rid": 1, "v": 10}, {"rid": 2, "v": 20}, {"rid": 9, "v": 0}]
        dims = [{"rid": 1, "name": "a"}, {"rid": 2, "name": "b"}]
        joined = hash_join(facts, dims, left_key="rid", right_key="rid")
        assert sorted((r["name"], r["v"]) for r in joined) == [("a", 10), ("b", 20)]

    def test_left_join_keeps_unmatched(self):
        facts = [{"rid": 1}, {"rid": 9}]
        dims = [{"rid": 1, "name": "a"}]
        joined = hash_join(facts, dims, left_key="rid", right_key="rid", how="left")
        assert len(joined) == 2

    def test_bad_join_type(self):
        with pytest.raises(QueryError):
            hash_join([], [], left_key="a", right_key="b", how="outer")


class TestVectorGroupSum:
    def test_basic(self):
        assert vector_group_sum(["a", "b", "a"], [1.0, 2.0, 3.0]) == {
            "a": 4.0, "b": 2.0,
        }

    def test_length_mismatch(self):
        with pytest.raises(QueryError):
            vector_group_sum(["a"], [1.0, 2.0])

    def test_empty(self):
        assert vector_group_sum([], []) == {}

    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from("abcdef"),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            max_size=200,
        )
    )
    def test_matches_reference_implementation(self, data):
        keys = [k for k, _ in data]
        values = [v for _, v in data]
        expected: dict[str, float] = {}
        for k, v in data:
            expected[k] = expected.get(k, 0.0) + v
        got = vector_group_sum(keys, values)
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k], abs=1e-6)
