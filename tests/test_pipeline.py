"""Ingest pipeline orchestration and high-water markers."""

from __future__ import annotations


from repro.etl import IngestPipeline, WAREHOUSE_SCHEMA
from repro.simulators import (
    CloudConfig,
    CloudSimulator,
    StorageConfig,
    StorageSimulator,
    generate_performance_batch,
)
from repro.timeutil import ts
from repro.warehouse import Database

T0 = ts(2017, 1, 1)
T1 = ts(2017, 2, 1)


class TestPipeline:
    def test_creates_warehouse_schema(self):
        db = Database()
        IngestPipeline(db)
        assert db.has_schema(WAREHOUSE_SCHEMA)

    def test_sacct_ingest_and_marker(self, sacct_log, job_records):
        pipe = IngestPipeline(Database())
        n = pipe.ingest_sacct(sacct_log, default_resource="testcluster")
        assert n == len(job_records)
        assert pipe.high_water("jobs") == max(r.end_ts for r in job_records)

    def test_incremental_reingest_adds_nothing(self, sacct_log):
        pipe = IngestPipeline(Database())
        pipe.ingest_sacct(sacct_log, default_resource="testcluster")
        assert pipe.ingest_sacct(sacct_log, default_resource="testcluster") == 0

    def test_marker_accumulates_counts(self, sacct_log, job_records):
        pipe = IngestPipeline(Database())
        pipe.ingest_sacct(sacct_log, default_resource="testcluster")
        pipe.ingest_sacct(sacct_log, default_resource="testcluster")
        marker = pipe.schema.table("etl_markers").get(("jobs",))
        assert marker["records_total"] == len(job_records)

    def test_full_run_report(self, sacct_log, job_records, small_resource):
        pipe = IngestPipeline(Database())
        cloud = CloudSimulator(CloudConfig(seed=9, vms_per_day=2.0)).generate(T0, T1)
        storage = list(StorageSimulator(StorageConfig(seed=9, n_users=4)).generate(T0, T1))
        perf = generate_performance_batch(job_records, small_resource, max_jobs=8)
        report = pipe.run(
            sacct_logs={"testcluster": sacct_log},
            performances=perf,
            storage_docs=storage,
            cloud_events=cloud,
        )
        assert report.jobs == len(job_records)
        assert report.perf == 8
        assert report.storage == len(storage)
        assert report.vms > 0
        assert report.total() == report.jobs + report.perf + report.storage + report.vms
        for source in ("jobs", "supremm", "storage", "cloud"):
            assert pipe.high_water(source) > 0

    def test_unknown_source_high_water_zero(self):
        assert IngestPipeline(Database()).high_water("nope") == 0
