#!/usr/bin/env python3
"""repolint CLI: schema-aware static analysis over the repro tree.

Usage (from the repo root)::

    python tools/repolint.py src/repro            # lint against the baseline
    python tools/repolint.py --no-baseline ...    # show all findings
    python tools/repolint.py --write-baseline ... # accept current findings
    python tools/repolint.py --list-rules

Exit codes: 0 clean, 1 new violations, 2 usage error.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.runner import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
