#!/usr/bin/env python
"""Generate docs/API.md from the package's public exports.

Run from the repository root:  python tools/gen_api_docs.py
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import sys
from typing import Sequence

PACKAGES = [
    "repro", "repro.warehouse", "repro.simulators", "repro.etl",
    "repro.aggregation", "repro.realms", "repro.core", "repro.auth",
    "repro.ui", "repro.appkernels", "repro.analysis", "repro.analytics",
    "repro.obs", "repro.config", "repro.timeutil",
]

FOOTER = """\
## Aggregation fast path

### Columnar table views

`warehouse.Table` keeps a cached columnar view of its rows:

- `Table.column_array(name)` returns a NumPy array for one column
  (`INT`/`TIMESTAMP` -> `int64`, promoted to `float64` with `NaN` when the
  column holds NULLs; `FLOAT` -> `float64` with NULL as `NaN`; everything
  else -> `object`).  `Table.column_arrays(names)` batches several columns.
- Arrays are cached per `(column, data_version)` and shared between
  callers; **do not mutate them in place**.
- `Table.data_version` increments on every mutation (`insert`,
  `delete_where`, `truncate`, replication replace), which invalidates the
  cache.  Repeated reads between mutations are free.

### Aggregation modes

Each realm has three equivalent implementations in
`repro.aggregation` (tested row-for-row against each other):

| mode | entry point | use |
|---|---|---|
| columnar (default) | `Aggregator.aggregate_jobs` / `aggregate_storage` / `aggregate_cloud` | full drop-and-rebuild on vectorized group reductions (`repro.aggregation.columnar`) |
| oracle | `Aggregator.aggregate_*_oracle` | pure-Python reference; same output, used as the test oracle |
| incremental | `Aggregator.aggregate_*_incremental` | folds only facts not yet seen into the existing `agg_*` tables |

Incremental aggregation keeps per-period bookkeeping tables
(`agg_seen_*`, plus `agg_state_storage_*` numerator sums for the storage
realm's gauge averages and `agg_active_vm_*` membership for distinct
active-VM counts).  Facts are treated as append-only; a full rebuild
resynchronizes the bookkeeping so incremental folds can resume afterward.
`FederationHub.aggregate_federation(periods, incremental=True)` folds only
the deltas replicated since the previous fold on every federated schema.

Edge-case semantics shared by all three modes: zero-walltime jobs
attribute their recorded usage to the period containing `end_ts`;
zero-length `running` VM intervals count toward `n_vms_active` in the
period containing `start_ts`; a storage `soft_quota_gb` of `0.0` is a real
quota sample (only NULL means "no quota configured").

## Serving layer (cache-first REST reads)

`GET /query` and `GET /chart` on `repro.ui.rest.XdmodApi` are served by
`repro.ui.serving.QueryService`, a query-result cache in front of the
realm/aggregation engine:

- **Cache key**: the canonical request tuple `(chart?, realm, metric,
  start, end, period, group_by, sorted filters, view, top_n, title)`.
  `offset`/`limit` are *excluded* — pagination slices the cached full
  payload, so every page of a result is served by one cached compute
  (per-window slices and their ETags are memoized inside the entry).
- **Invalidation**: every cache entry is stamped with the
  `Schema.data_version` counters of all source schemas at build time.
  `data_version` is a monotonic per-schema counter bumped by *any*
  mutation (insert/update/delete/truncate, replication replace,
  create/drop table), so the freshness check is one integer comparison
  per source schema, never a row scan.  A hit returns the stored payload
  without touching the aggregation engine; a version mismatch counts as
  `stale`, recomputes, and re-stamps the entry in place; capacity is
  bounded by LRU eviction (`cache_entries`, default 512).  Cached and
  uncached responses are byte-identical — the cache changes latency,
  never answers (`XdmodApi(cache=False)` / `xdmod-repro serve
  --no-cache` is the pass-through baseline).
- **ETag semantics**: each 200 response carries a strong `ETag` (SHA-256
  of the canonical JSON of the exact paginated payload) plus an
  `X-Cache: hit|miss|stale|bypass` header.  A request whose
  `If-None-Match` matches (comma lists, `W/` prefixes and `*` per
  RFC 9110) gets an empty `304 Not Modified`.  ETags change whenever the
  data or the pagination window changes.
- **Materialized views**: `QueryService.register_view(ViewSpec(...))`
  declares a standing query; `QueryService.materialize()` recomputes all
  of them through the normal cache path.  Wire it to the hub with
  `hub.add_post_aggregation_hook(service.materialize)` and the portal's
  standing charts are warm before the first request after every
  `aggregate_federation()`.
- **Telemetry** (with an `Observability` bundle attached):
  `serving_cache_lookups_total{result}`, `serving_cache_evictions_total`,
  `serving_cache_entries_rows`, `serving_view_refreshes_total`,
  `serving_requests_total{route,class}` and the
  `serving_request_seconds{route}` latency histogram; the shipped
  `api_error_ratio_high` SLO rule pages when >=5% of recent requests are
  5xx.  All JSON bodies are strict JSON — non-finite samples serialize
  as the strings `"NaN"` / `"+Inf"` / `"-Inf"`.

`benchmarks/bench_a13_serving.py` prices the layer: warm-cache `/query`
p99 must be at least 5x faster than the uncached baseline at equal
correctness.

## Static analysis

`tools/repolint.py` (or `xdmod-repro lint`) runs the schema-aware lint
engine in `repro.analysis` over the tree; see `docs/static-analysis.md`
for the rule catalog, suppression syntax, and baseline workflow.

## Observability

Every `XdmodInstance` / `FederationHub` carries a `repro.obs.Observability`
bundle (metrics registry + tracer + injectable clock); `GET /metrics` on
`repro.ui.rest` serves the registry in Prometheus text format and
`xdmod-repro obs` dumps the same data from the CLI.  See
`docs/observability.md` for the metric catalog, span semantics, and the
overhead budget.
"""


def kind_of(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    return "constant"


def generate(packages: Sequence[str] | None = None) -> str:
    """Render the API reference markdown for ``packages``
    (default: the module-level PACKAGES list).

    Raises ImportError if any package does not import — callers decide
    whether that is fatal (:func:`main` turns it into exit code 1).
    """
    if packages is None:
        packages = PACKAGES
    lines = [
        "# API reference", "",
        "Generated from the packages' `__all__` exports "
        "(`python tools/gen_api_docs.py` regenerates this file).", "",
    ]
    for name in packages:
        mod = importlib.import_module(name)
        doc = (mod.__doc__ or "").strip().splitlines()
        lines.append(f"## `{name}`")
        lines.append("")
        if doc:
            lines.append(doc[0])
            lines.append("")
        exports = getattr(mod, "__all__", None)
        if exports is None:
            exports = [
                n for n in dir(mod)
                if not n.startswith("_")
                and getattr(getattr(mod, n), "__module__", "").startswith("repro")
            ]
        rows = []
        for export in sorted(exports, key=str.lower):
            obj = getattr(mod, export, None)
            odoc = (inspect.getdoc(obj) or "").splitlines()
            first = odoc[0] if odoc else ""
            if len(first) > 90:
                first = first[:87] + "..."
            rows.append(f"| `{export}` | {kind_of(obj)} | {first} |")
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            lines.extend(rows)
        lines.append("")
    lines.append(FOOTER)
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", "-o", default="docs/API.md",
        help="output file (default: docs/API.md); '-' for stdout",
    )
    args = parser.parse_args(argv)
    try:
        text = generate()
    except ImportError as exc:
        print(f"gen_api_docs: cannot import package: {exc}", file=sys.stderr)
        return 1
    if args.output == "-":
        sys.stdout.write(text)
        return 0
    out = pathlib.Path(args.output)
    out.parent.mkdir(exist_ok=True)
    out.write_text(text)
    print(f"wrote {out} ({text.count(chr(10))} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
