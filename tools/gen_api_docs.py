#!/usr/bin/env python
"""Generate docs/API.md from the package's public exports.

Run from the repository root:  python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib

PACKAGES = [
    "repro", "repro.warehouse", "repro.simulators", "repro.etl",
    "repro.aggregation", "repro.realms", "repro.core", "repro.auth",
    "repro.ui", "repro.appkernels", "repro.config", "repro.timeutil",
]


def kind_of(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    return "constant"


def main() -> None:
    lines = [
        "# API reference", "",
        "Generated from the packages' `__all__` exports "
        "(`python tools/gen_api_docs.py` regenerates this file).", "",
    ]
    for name in PACKAGES:
        mod = importlib.import_module(name)
        doc = (mod.__doc__ or "").strip().splitlines()
        lines.append(f"## `{name}`")
        lines.append("")
        if doc:
            lines.append(doc[0])
            lines.append("")
        exports = getattr(mod, "__all__", None)
        if exports is None:
            exports = [
                n for n in dir(mod)
                if not n.startswith("_")
                and getattr(getattr(mod, n), "__module__", "").startswith("repro")
            ]
        rows = []
        for export in sorted(exports, key=str.lower):
            obj = getattr(mod, export, None)
            odoc = (inspect.getdoc(obj) or "").splitlines()
            first = odoc[0] if odoc else ""
            if len(first) > 90:
                first = first[:87] + "..."
            rows.append(f"| `{export}` | {kind_of(obj)} | {first} |")
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            lines.extend(rows)
        lines.append("")
    out = pathlib.Path("docs")
    out.mkdir(exist_ok=True)
    (out / "API.md").write_text("\n".join(lines) + "\n")
    print(f"wrote docs/API.md ({len(lines)} lines)")


if __name__ == "__main__":
    main()
